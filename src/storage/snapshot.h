#ifndef RIGPM_STORAGE_SNAPSHOT_H_
#define RIGPM_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/gm_engine.h"
#include "graph/graph.h"
#include "storage/snapshot_io.h"
#include "util/mapped_file.h"
#include "util/serde.h"

namespace rigpm {

/// Versioned binary snapshot files — the persistence layer that turns
/// process restarts from recompute-bound into I/O-bound (cold start parses
/// text and rebuilds the BFL index; warm start streams pre-built structures
/// back in, or — the default — maps the file and serves straight out of the
/// page cache).
///
/// Container layout (all integers host-endian, see util/serde.h):
///   8 bytes  magic "RIGPMSNP"
///   u32      format version (kSnapshotVersion)
///   u32      payload kind (SnapshotKind)
///   u64      payload size in bytes
///   payload  kind-specific body written via ByteSink
///   u64      Checksum64 of the payload
///
/// Format v2 pads every bulk array inside the payload to an 8-byte boundary
/// (relative to the payload start; the 24-byte header keeps payload offsets
/// congruent to file offsets mod 8, and both the mmap base and the slurp
/// buffer are at least 8-byte aligned). That is what lets the zero-copy
/// loader hand out typed pointers straight into the mapping. v1 files (no
/// padding) still load — their arrays are copied out instead.
///
/// Format v3 additionally stores bitmap run containers in their native
/// encoding (bitmap/bitmap.h): clustered chunks ship as (start, length)
/// pairs instead of materialized arrays/bitsets. It also drops the
/// redundant per-bitmap total-cardinality word (the per-container
/// cardinalities it summed are each validated on their own) — across the
/// millions of tiny per-node CSR bitmaps that word alone is several percent
/// of a graph snapshot, so v3 files are strictly smaller than their v2
/// twins even with no run containers at all. Combined with the
/// v2 alignment contract, an mmap'd load keeps those encoded payloads
/// *borrowed inside the mapping* and decodes them lazily on first mutating
/// touch. v1/v2 files still load unchanged (they simply contain no run
/// containers — the reader rejects a run container in a pre-v3 file as
/// corruption), and `WriteSnapshotFile(..., version=2)` together with
/// `ByteSink(/*pad_arrays=*/true, /*encode_runs=*/false)` reproduces a v2
/// file for migration tooling and compat tests.
///
/// Readers reject bad magic, unknown versions, kind mismatches, payload
/// sizes inconsistent with the file, truncation, and checksum mismatches —
/// each with a descriptive error, never by crashing or silently returning a
/// partial structure.

inline constexpr uint32_t kSnapshotVersion = 3;

/// Oldest format version the reader still accepts (copy-out fallback).
inline constexpr uint32_t kMinSnapshotVersion = 1;

enum class SnapshotKind : uint32_t {
  kGraph = 1,          // Graph only
  kEngine = 2,         // Graph + BFL index (+ condensation/intervals)
  kGraphDatabase = 3,  // member graphs + names + feature vectors
  kDelta = 4,          // append-only edge-delta log (storage/delta_log.h);
                       // NOT a single-payload snapshot: the u64 header slot
                       // holds the base snapshot's checksum, and the body is
                       // a record sequence with per-record checksums
};

/// Frames `payload` with the header and CRC and writes it to `path`.
/// `version` is the format version stamped into the header; pass
/// kMinSnapshotVersion together with ByteSink(/*pad_arrays=*/false) to
/// reproduce a v1 file (compat tests and migration tooling only).
bool WriteSnapshotFile(const std::string& path, SnapshotKind kind,
                       const ByteSink& payload, std::string* error = nullptr,
                       uint32_t version = kSnapshotVersion);

/// Header fields of a snapshot file, readable without touching the payload
/// (`rigpm_cli snapshot --inspect`). For kind kDelta the header's u64 slot
/// is the BASE snapshot checksum, not a payload size: payload_size is
/// reported as the record-area byte count and stored_checksum as that base
/// binding (use `rigpm_cli delta inspect` for per-record detail).
struct SnapshotInfo {
  uint32_t version = 0;
  uint32_t kind_value = 0;  // SnapshotKind, raw (may be unknown to us)
  uint64_t payload_size = 0;
  uint64_t stored_checksum = 0;  // trailing footer, NOT re-verified here
  uint64_t file_size = 0;
  bool aligned = false;  // version >= 2: arrays 8-byte padded (zero-copy OK)
  bool run_encoded = false;  // version >= 3: may hold native run containers
};

/// Reads and validates only the container header + footer (magic, version
/// range, size consistency). Never decodes or checksums the payload.
std::optional<SnapshotInfo> InspectSnapshot(const std::string& path,
                                            std::string* error = nullptr);

/// Opens a snapshot file, validates the container header, gets the payload
/// into memory per `mode`, and verifies the checksum *before* any decoding
/// (so deserializers never see corrupt bytes). Usage:
///   SnapshotReader reader(path, SnapshotKind::kGraph);
///   if (!reader.ok()) ...;
///   Graph g = Graph::Deserialize(reader.source());
///   if (!reader.Finish()) ...;   // decode succeeded + payload consumed
///
/// In mmap mode the source is zero-copy: deserialized objects borrow spans
/// from the mapping and retain a shared ownership token for it, so they
/// stay valid after the reader is destroyed; the mapping is unmapped when
/// the last such object goes away.
class SnapshotReader {
 public:
  SnapshotReader(const std::string& path, SnapshotKind expected_kind,
                 SnapshotIoMode mode = DefaultSnapshotIoMode());

  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  /// True when the payload is served from a file mapping (zero-copy mode).
  bool mapped() const { return mapping_ != nullptr; }

  /// The file's stored payload checksum (valid once ok(); verified against
  /// the payload). This is the value delta logs bind to — callers that
  /// need it should take it from here rather than re-opening the file,
  /// which could have been rename-replaced since.
  uint64_t stored_checksum() const { return stored_checksum_; }

  /// Valid only while ok().
  ByteSource& source() { return *source_; }

  /// Checks that decoding succeeded and consumed the whole payload.
  /// Returns false (with error()) otherwise.
  bool Finish();

 private:
  void InitFromMapping(SnapshotKind expected_kind);
  void InitFromStream(const std::string& path, SnapshotKind expected_kind);

  std::shared_ptr<MappedFile> mapping_;   // mmap mode
  std::unique_ptr<uint8_t[]> payload_raw_;  // read mode, size known up front
  std::vector<uint8_t> payload_buf_;        // read mode, unseekable source
  uint64_t payload_size_ = 0;
  uint64_t stored_checksum_ = 0;
  std::optional<ByteSource> source_;
  std::string error_;
};

// ------------------------------------------------------------------ graphs

bool SaveGraphSnapshot(const Graph& g, const std::string& path,
                       std::string* error = nullptr);

/// Loads a graph snapshot per `options` (storage/snapshot_io.h). With
/// options.delta_path set, the log's records are replayed over the base and
/// the MERGED graph is returned (an owned copy — the overlay gives up the
/// zero-copy borrow; an empty or missing log keeps it).
std::optional<Graph> LoadGraphSnapshot(const std::string& path,
                                       const LoadOptions& options = {},
                                       std::string* error = nullptr);

// ----------------------------------------------------------------- engines

/// A graph plus a GmEngine serving it, loaded as one unit from an engine
/// snapshot. The engine references the graph, so both live here together.
struct WarmEngine {
  std::unique_ptr<Graph> graph;
  std::unique_ptr<GmEngine> engine;
  /// Stored payload checksum of the snapshot this engine was loaded from —
  /// the identity delta logs bind to. Taken from the bytes actually
  /// loaded, so it cannot disagree with the served graph even if the file
  /// is rename-replaced concurrently.
  uint64_t stored_checksum = 0;
  /// Delta-overlay resume point (LoadOptions::delta_path): sequence number
  /// and chain checksum of the last log record replayed into this engine,
  /// both 0 when no overlay was requested or the log held nothing. A
  /// refresher resuming this engine passes applied_seqno to
  /// CollectDeltaOps and compares applied_chain against the log's
  /// resume-point chain to detect a rewritten log (storage/delta_log.h).
  uint64_t applied_seqno = 0;
  uint64_t applied_chain = 0;
  /// Byte offset just past the last replayed record (0 when no overlay was
  /// requested or the log did not exist) — lets the refresher's poll seek
  /// straight to the unread tail instead of re-validating the whole chain.
  uint64_t applied_end_offset = 0;
};

/// Persists `engine`'s graph and its pre-built BFL reachability index.
/// Only BFL-backed engines can be snapshotted (the paper's default); other
/// reach kinds report an error.
bool SaveEngineSnapshot(const GmEngine& engine, const std::string& path,
                        std::string* error = nullptr);

/// Restores a graph + engine pair without re-parsing text or rebuilding the
/// index: the whole load is deserialization (and in mmap mode, mostly just
/// establishing views into the mapping). With options.delta_path set, the
/// log's records are replayed over the base and the index rebuilt over the
/// merged graph — the cold-rebuild twin of the daemon's kRefresh path, so
/// the two can never diverge on what "base + log" serves.
std::optional<WarmEngine> LoadEngineSnapshot(const std::string& path,
                                             const LoadOptions& options = {},
                                             std::string* error = nullptr);

}  // namespace rigpm

#endif  // RIGPM_STORAGE_SNAPSHOT_H_
