#ifndef RIGPM_STORAGE_SNAPSHOT_H_
#define RIGPM_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include "engine/gm_engine.h"
#include "graph/graph.h"
#include "util/serde.h"

namespace rigpm {

/// Versioned binary snapshot files — the persistence layer that turns
/// process restarts from recompute-bound into I/O-bound (cold start parses
/// text and rebuilds the BFL index; warm start streams pre-built structures
/// back in).
///
/// Container layout (all integers host-endian, see util/serde.h):
///   8 bytes  magic "RIGPMSNP"
///   u32      format version (kSnapshotVersion)
///   u32      payload kind (SnapshotKind)
///   u64      payload size in bytes
///   payload  kind-specific body written via ByteSink
///   u64      Checksum64 of the payload
///
/// Readers reject bad magic, unknown versions, kind mismatches, payload
/// sizes inconsistent with the file, truncation, and checksum mismatches —
/// each with a descriptive error, never by crashing or silently returning a
/// partial structure.

inline constexpr uint32_t kSnapshotVersion = 1;

enum class SnapshotKind : uint32_t {
  kGraph = 1,          // Graph only
  kEngine = 2,         // Graph + BFL index (+ condensation/intervals)
  kGraphDatabase = 3,  // member graphs + names + feature vectors
};

/// Frames `payload` with the header and CRC and writes it to `path`.
bool WriteSnapshotFile(const std::string& path, SnapshotKind kind,
                       const ByteSink& payload, std::string* error = nullptr);

/// Opens a snapshot file, validates the container header, slurps the
/// payload with a single read, and verifies the checksum *before* any
/// decoding (so deserializers never see corrupt bytes). Usage:
///   SnapshotReader reader(path, SnapshotKind::kGraph);
///   if (!reader.ok()) ...;
///   Graph g = Graph::Deserialize(reader.source());
///   if (!reader.Finish()) ...;   // decode succeeded + payload consumed
class SnapshotReader {
 public:
  SnapshotReader(const std::string& path, SnapshotKind expected_kind);

  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  /// Valid only while ok().
  ByteSource& source() { return *source_; }

  /// Checks that decoding succeeded and consumed the whole payload.
  /// Returns false (with error()) otherwise.
  bool Finish();

 private:
  std::unique_ptr<uint8_t[]> payload_;
  uint64_t payload_size_ = 0;
  std::optional<ByteSource> source_;
  std::string error_;
};

// ------------------------------------------------------------------ graphs

bool SaveGraphSnapshot(const Graph& g, const std::string& path,
                       std::string* error = nullptr);
std::optional<Graph> LoadGraphSnapshot(const std::string& path,
                                       std::string* error = nullptr);

// ----------------------------------------------------------------- engines

/// A graph plus a GmEngine serving it, loaded as one unit from an engine
/// snapshot. The engine references the graph, so both live here together.
struct WarmEngine {
  std::unique_ptr<Graph> graph;
  std::unique_ptr<GmEngine> engine;
};

/// Persists `engine`'s graph and its pre-built BFL reachability index.
/// Only BFL-backed engines can be snapshotted (the paper's default); other
/// reach kinds report an error.
bool SaveEngineSnapshot(const GmEngine& engine, const std::string& path,
                        std::string* error = nullptr);

/// Restores a graph + engine pair without re-parsing text or rebuilding the
/// index: the whole load is deserialization.
std::optional<WarmEngine> LoadEngineSnapshot(const std::string& path,
                                             std::string* error = nullptr);

}  // namespace rigpm

#endif  // RIGPM_STORAGE_SNAPSHOT_H_
