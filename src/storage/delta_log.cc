#include "storage/delta_log.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <unordered_map>

#include "storage/snapshot.h"
#include "util/serde.h"

namespace rigpm {

namespace {

constexpr char kMagic[8] = {'R', 'I', 'G', 'P', 'M', 'S', 'N', 'P'};
// 24-byte snapshot container head + u32 base node count + u32 reserved.
constexpr uint64_t kFileHeaderBytes = kDeltaFileHeaderBytes;
static_assert(kFileHeaderBytes == sizeof(kMagic) + 2 * sizeof(uint32_t) +
                                      sizeof(uint64_t) + 2 * sizeof(uint32_t));
// base checksum + seqno + edge count + flags (the fields the header
// checksum covers).
constexpr uint64_t kRecordFieldsBytes = 2 * sizeof(uint64_t) +
                                        2 * sizeof(uint32_t);
// ... plus the header checksum itself.
constexpr uint64_t kRecordHeaderBytes = kRecordFieldsBytes + sizeof(uint64_t);
constexpr uint64_t kEdgeBytes = 2 * sizeof(NodeId);

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

/// fsyncs the directory containing `path`, so a freshly created file's
/// directory entry is durable — fdatasync(fd) alone persists the data but
/// not the entry, and a crash could lose the whole "synced" file.
bool SyncParentDir(const std::string& path, std::string* error) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? std::string(".") : parent.string();
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) {
    SetError(error, "cannot open directory " + dir + ": " +
                        std::strerror(errno));
    return false;
  }
  const bool ok = ::fsync(dfd) == 0;
  if (!ok) {
    SetError(error,
             "cannot sync directory " + dir + ": " + std::strerror(errno));
  }
  ::close(dfd);
  return ok;
}

/// Serializes the delta file header into `sink`.
void WriteFileHeader(ByteSink& sink, uint32_t format_version,
                     uint64_t base_checksum, uint32_t base_num_nodes) {
  sink.WriteRaw(kMagic, sizeof(kMagic));
  sink.WriteU32(format_version);
  sink.WriteU32(static_cast<uint32_t>(SnapshotKind::kDelta));
  sink.WriteU64(base_checksum);
  sink.WriteU32(base_num_nodes);
  sink.WriteU32(0);  // reserved
}

/// Validates a delta file header in `data` (at least kFileHeaderBytes).
/// Returns false with *error on anything but a well-formed delta header.
bool ParseFileHeader(const uint8_t* data, uint32_t* format_version,
                     uint64_t* base_checksum, uint32_t* base_num_nodes,
                     std::string* error) {
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    SetError(error, "bad delta log magic (not a rigpm delta log)");
    return false;
  }
  uint32_t version = 0;
  uint32_t kind = 0;
  std::memcpy(&version, data + sizeof(kMagic), sizeof(version));
  std::memcpy(&kind, data + sizeof(kMagic) + sizeof(uint32_t), sizeof(kind));
  if (version < kMinSnapshotVersion || version > kDeltaFormatOps) {
    SetError(error,
             "unsupported delta log version " + std::to_string(version) +
                 " (this build supports up to " +
                 std::to_string(kDeltaFormatOps) + ")");
    return false;
  }
  if (kind != static_cast<uint32_t>(SnapshotKind::kDelta)) {
    SetError(error, "file has snapshot kind " + std::to_string(kind) +
                        ", not a delta log");
    return false;
  }
  *format_version = version;
  std::memcpy(base_checksum, data + sizeof(kMagic) + 2 * sizeof(uint32_t),
              sizeof(*base_checksum));
  std::memcpy(base_num_nodes,
              data + sizeof(kMagic) + 2 * sizeof(uint32_t) + sizeof(uint64_t),
              sizeof(*base_num_nodes));
  return true;
}

/// One parsed-and-verified record starting at `offset` in data[0..size).
/// Returns the number of bytes consumed, or 0 when the bytes at `offset` do
/// not form a valid next record (*why says what failed). *torn_tail
/// distinguishes the two failure classes: true when the record simply runs
/// past end-of-file (a crashed append — Append writes each record with one
/// pwrite, so a tear always leaves a strict prefix), false when the full
/// record bytes are present but invalid (corruption of acknowledged data).
/// `format_version` is the log's header version: it gates which record
/// flags are legal. Pure validation — shared by writer recovery and reader
/// iteration.
uint64_t ParseRecord(const uint8_t* data, uint64_t size, uint64_t offset,
                     uint32_t format_version, uint64_t expected_base,
                     uint64_t expected_seqno, uint64_t chain_seed,
                     DeltaRecord* out, std::string* why,
                     bool* torn_tail = nullptr) {
  if (torn_tail != nullptr) *torn_tail = false;
  if (size - offset < kRecordHeaderBytes) {
    if (torn_tail != nullptr) *torn_tail = true;
    SetError(why, "truncated record header");
    return 0;
  }
  const uint8_t* rec = data + offset;
  uint64_t base = 0;
  uint64_t seqno = 0;
  uint32_t num_edges = 0;
  uint32_t flags = 0;
  uint64_t header_checksum = 0;
  std::memcpy(&base, rec, sizeof(base));
  std::memcpy(&seqno, rec + 8, sizeof(seqno));
  std::memcpy(&num_edges, rec + 16, sizeof(num_edges));
  std::memcpy(&flags, rec + 20, sizeof(flags));
  std::memcpy(&header_checksum, rec + kRecordFieldsBytes,
              sizeof(header_checksum));
  if (base != expected_base) {
    SetError(why, "record is bound to a different base snapshot");
    return 0;
  }
  if (seqno != expected_seqno) {
    SetError(why, "record sequence number " + std::to_string(seqno) +
                      " breaks the chain (expected " +
                      std::to_string(expected_seqno) + ")");
    return 0;
  }
  const uint32_t allowed_flags =
      format_version >= kDeltaFormatOps ? kDeltaRecordHasOps : 0u;
  if ((flags & ~allowed_flags) != 0) {
    SetError(why, "record has unknown flags");
    return 0;
  }
  const bool has_ops = (flags & kDeltaRecordHasOps) != 0;
  // The header carries its own checksum so the edge count is trustworthy
  // BEFORE the truncated-body test below: without it, a bit flip in
  // num_edges would inflate the declared size past EOF and a corrupt
  // record mid-log would be indistinguishable from a torn append — and
  // writer recovery would truncate acknowledged records behind it.
  if (header_checksum != Checksum64(rec, kRecordFieldsBytes, chain_seed)) {
    SetError(why, "record header checksum mismatch");
    return 0;
  }
  const uint64_t body = kRecordHeaderBytes + uint64_t{num_edges} * kEdgeBytes +
                        (has_ops ? uint64_t{num_edges} : 0);
  if (size - offset < body + sizeof(uint64_t)) {
    if (torn_tail != nullptr) *torn_tail = true;
    SetError(why, "truncated record body");
    return 0;
  }
  uint64_t stored = 0;
  std::memcpy(&stored, rec + body, sizeof(stored));
  if (stored != Checksum64(rec, body, chain_seed)) {
    SetError(why, "record checksum mismatch");
    return 0;
  }
  const uint8_t* op_kinds =
      rec + kRecordHeaderBytes + uint64_t{num_edges} * kEdgeBytes;
  if (has_ops) {
    for (uint32_t i = 0; i < num_edges; ++i) {
      if (op_kinds[i] > static_cast<uint8_t>(DeltaOpKind::kDelete)) {
        // Checksum passed, so these bytes are what the writer wrote — an
        // op kind we do not know is a format from the future, not a tear.
        SetError(why, "record op kind " + std::to_string(op_kinds[i]) +
                          " is unknown");
        return 0;
      }
    }
  }
  if (out != nullptr) {
    out->seqno = seqno;
    out->ops.resize(num_edges);
    for (uint32_t i = 0; i < num_edges; ++i) {
      NodeId src = 0;
      NodeId dst = 0;
      std::memcpy(&src, rec + kRecordHeaderBytes + uint64_t{i} * kEdgeBytes,
                  sizeof(src));
      std::memcpy(&dst,
                  rec + kRecordHeaderBytes + uint64_t{i} * kEdgeBytes +
                      sizeof(NodeId),
                  sizeof(dst));
      out->ops[i] = {src, dst,
                     has_ops ? static_cast<DeltaOpKind>(op_kinds[i])
                             : DeltaOpKind::kAdd};
    }
  }
  return body + sizeof(uint64_t);
}

/// Updates *chain to the checksum of the record at `offset` (caller has
/// already validated it via ParseRecord).
void AdvanceChain(const uint8_t* data, uint64_t offset, uint64_t consumed,
                  uint64_t* chain) {
  std::memcpy(chain, data + offset + consumed - sizeof(uint64_t),
              sizeof(*chain));
}

}  // namespace

std::vector<DeltaOp> EdgesToOps(
    std::span<const std::pair<NodeId, NodeId>> edges) {
  std::vector<DeltaOp> ops;
  ops.reserve(edges.size());
  for (const auto& [src, dst] : edges) {
    ops.push_back({src, dst, DeltaOpKind::kAdd});
  }
  return ops;
}

uint64_t DeltaRecord::delete_count() const {
  uint64_t n = 0;
  for (const DeltaOp& op : ops) n += op.kind == DeltaOpKind::kDelete;
  return n;
}

// ----------------------------------------------------------- DeltaWriter

DeltaWriter::~DeltaWriter() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<DeltaWriter> DeltaWriter::Open(const std::string& path,
                                               uint64_t base_checksum,
                                               uint32_t base_num_nodes,
                                               std::string* error,
                                               DeltaWriterOptions options) {
  if (options.format_version < kMinSnapshotVersion ||
      options.format_version > kDeltaFormatOps) {
    SetError(error, "unsupported delta log version " +
                        std::to_string(options.format_version));
    return nullptr;
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    SetError(error, "cannot open " + path + ": " + std::strerror(errno));
    return nullptr;
  }
  auto writer = std::unique_ptr<DeltaWriter>(new DeltaWriter());
  writer->fd_ = fd;  // the writer owns fd (and its lock) from here on
  writer->base_num_nodes_ = base_num_nodes;
  // One writer at a time: two concurrent appenders would both scan to the
  // same chain position and interleave same-seqno records — the second
  // writer's acknowledged record would read as a torn tail and be
  // truncated away by the next recovery scan. The lock lives as long as
  // the fd, i.e. the writer.
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    SetError(error, path + (errno == EWOULDBLOCK
                                ? " is locked by another delta writer"
                                : std::string(" lock failed: ") +
                                      std::strerror(errno)));
    return nullptr;
  }
  writer->base_checksum_ = base_checksum;
  writer->chain_checksum_ = base_checksum;
  writer->format_version_ = options.format_version;
  writer->options_ = options;

  // Read whatever is there: a fresh file gets a header; an existing log is
  // validated and scanned so appends continue the chain. The scan doubles
  // as crash recovery — an invalid tail (a torn append) is truncated away.
  off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    SetError(error, "cannot seek " + path + ": " + std::strerror(errno));
    return nullptr;
  }
  if (end == 0) {
    // Truly empty (just created, or a zero-length leftover): initialize.
    // The directory fsync makes the new entry itself durable — without it
    // a crash after an "acknowledged" first append could lose the whole
    // file, violating the write-ahead guarantee the journal exists for.
    if (base_num_nodes == 0) {
      SetError(error, "creating " + path + " requires the base graph's "
                          "node count (the permanent endpoint bound)");
      return nullptr;
    }
    ByteSink header;
    WriteFileHeader(header, options.format_version, base_checksum,
                    base_num_nodes);
    if (::pwrite(fd, header.data().data(), header.size(), 0) !=
        static_cast<ssize_t>(header.size())) {
      SetError(error, "cannot initialize " + path + ": " +
                          std::strerror(errno));
      return nullptr;
    }
    if (options.fsync_each_append &&
        (::fdatasync(fd) != 0 || !SyncParentDir(path, error))) {
      if (error != nullptr && error->empty()) {
        SetError(error, "cannot sync " + path + ": " + std::strerror(errno));
      }
      return nullptr;
    }
    return writer;
  }
  if (static_cast<uint64_t>(end) < kFileHeaderBytes) {
    // Nonempty but too short to be a delta log. This is NOT ours to
    // repair: a torn header write can only exist for a log that never
    // acknowledged an append, and the far likelier cause is a mistyped
    // path pointing at some other small file — refuse instead of
    // truncating someone's data away.
    SetError(error, path + " exists but is not a delta log (" +
                        std::to_string(end) + " bytes); refusing to "
                        "overwrite it");
    return nullptr;
  }

  std::vector<uint8_t> bytes(static_cast<size_t>(end));
  ssize_t got = ::pread(fd, bytes.data(), bytes.size(), 0);
  if (got != static_cast<ssize_t>(bytes.size())) {
    SetError(error, "cannot read " + path + ": " + std::strerror(errno));
    return nullptr;
  }
  uint32_t file_version = 0;
  uint64_t file_base = 0;
  uint32_t file_num_nodes = 0;
  if (!ParseFileHeader(bytes.data(), &file_version, &file_base,
                       &file_num_nodes, error)) {
    return nullptr;
  }
  // A clear version message, decided from the HEADER, before any chain
  // validation: a writer built for version <= 3 must not misreport a
  // version-4 log as a checksum failure (and must not append records the
  // old format cannot express).
  if (file_version > options.format_version) {
    SetError(error, path + " is a format version " +
                        std::to_string(file_version) +
                        " delta log, but this writer supports up to "
                        "version " + std::to_string(options.format_version) +
                        " — upgrade the tool or recreate the log");
    return nullptr;
  }
  if (file_base != base_checksum) {
    SetError(error, path + " is bound to a different base snapshot "
                        "(refusing to mix bases in one log)");
    return nullptr;
  }
  if (base_num_nodes != 0 && base_num_nodes != file_num_nodes) {
    SetError(error, path + " records a base of " +
                        std::to_string(file_num_nodes) +
                        " nodes, but the caller expects " +
                        std::to_string(base_num_nodes));
    return nullptr;
  }
  writer->base_num_nodes_ = file_num_nodes;
  // An existing log keeps its stamped version: appends must stay readable
  // by every consumer the header already promises compatibility to.
  writer->format_version_ = file_version;
  uint64_t offset = kFileHeaderBytes;
  while (offset < bytes.size()) {
    std::string why;
    bool torn_tail = false;
    uint64_t consumed =
        ParseRecord(bytes.data(), bytes.size(), offset, file_version,
                    base_checksum, writer->last_seqno_ + 1,
                    writer->chain_checksum_, nullptr, &why, &torn_tail);
    if (consumed == 0) {
      if (!torn_tail) {
        // Full record bytes are present but invalid: that is corruption of
        // acknowledged (fsynced) data, not a crashed append — truncating
        // here would silently destroy every durable record after it.
        // Refuse; the operator can inspect/replay the valid prefix and
        // re-snapshot.
        SetError(error, path + " is corrupt after record " +
                            std::to_string(writer->last_seqno_) + " (" +
                            why + "); refusing to truncate acknowledged "
                            "records — recover via `delta replay` + a new "
                            "log");
        return nullptr;
      }
      // Torn tail from a crashed append: drop it so the next record chains
      // cleanly off the last durable one.
      if (::ftruncate(fd, static_cast<off_t>(offset)) != 0) {
        SetError(error, "cannot truncate torn tail of " + path + ": " +
                            std::strerror(errno));
        return nullptr;
      }
      break;
    }
    AdvanceChain(bytes.data(), offset, consumed, &writer->chain_checksum_);
    ++writer->last_seqno_;
    offset += consumed;
  }
  return writer;
}

bool DeltaWriter::AppendOps(std::span<const DeltaOp> ops,
                            std::string* error) {
  if (fd_ < 0) {
    SetError(error, "delta writer is not open");
    return false;
  }
  if (poisoned_) {
    SetError(error, "delta writer is poisoned (a failed append could not "
                    "be rolled back; reopen the log to recover)");
    return false;
  }
  if (ops.size() > std::numeric_limits<uint32_t>::max()) {
    SetError(error, "op batch too large for one delta record");
    return false;
  }
  // The format layer's own line of defense: no record may ever reference a
  // node the base does not have, whatever the caller checked.
  if (!ValidateOpEndpoints(ops, base_num_nodes_, error)) return false;
  bool has_delete = false;
  for (const DeltaOp& op : ops) has_delete |= op.kind == DeltaOpKind::kDelete;
  if (has_delete && format_version_ < kDeltaFormatOps) {
    SetError(error, "delta log has format version " +
                        std::to_string(format_version_) +
                        ", which cannot carry delete ops (version " +
                        std::to_string(kDeltaFormatOps) +
                        " required) — create a new log or compact to "
                        "upgrade");
    return false;
  }
  // Add-only batches use the flags == 0 encoding even in a version-4 log:
  // byte-identical to the old format, and an op-kind byte per edge saved.
  const uint32_t flags = has_delete ? kDeltaRecordHasOps : 0u;
  ByteSink record;
  record.WriteU64(base_checksum_);
  record.WriteU64(last_seqno_ + 1);
  record.WriteU32(static_cast<uint32_t>(ops.size()));
  record.WriteU32(flags);
  // Header checksum over the fields above: keeps the edge count
  // trustworthy for readers even when the body is torn (ParseRecord).
  record.WriteU64(
      Checksum64(record.data().data(), record.size(), chain_checksum_));
  for (const DeltaOp& op : ops) {
    record.WriteU32(op.src);
    record.WriteU32(op.dst);
  }
  if (flags & kDeltaRecordHasOps) {
    for (const DeltaOp& op : ops) {
      const uint8_t kind = static_cast<uint8_t>(op.kind);
      record.WriteRaw(&kind, 1);
    }
  }
  const uint64_t checksum =
      Checksum64(record.data().data(), record.size(), chain_checksum_);
  record.WriteU64(checksum);

  // One positional write at the end: no seek state to race, and a torn
  // write is recovered by the next Open()'s tail truncation.
  off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) {
    SetError(error, std::string("delta append failed: ") +
                        std::strerror(errno));
    return false;
  }
  // On ANY failure, roll the file back to where this append started: a
  // partial record left in place would sit in front of the next
  // successful append, turning an acknowledged record into an unreadable
  // tail that recovery would then truncate away. If even the rollback
  // fails, the writer poisons itself — a blind retry would land after the
  // junk and be unrecoverable; reopening the log re-runs torn-tail
  // recovery on the real file state.
  auto fail_and_rollback = [&](const char* what) {
    SetError(error, std::string(what) + ": " + std::strerror(errno));
    if (::ftruncate(fd_, end) != 0) poisoned_ = true;
    return false;
  };
  if (::pwrite(fd_, record.data().data(), record.size(), end) !=
      static_cast<ssize_t>(record.size())) {
    return fail_and_rollback("delta append failed");
  }
  if (options_.fsync_each_append && ::fdatasync(fd_) != 0) {
    return fail_and_rollback("delta fsync failed");
  }
  chain_checksum_ = checksum;
  ++last_seqno_;
  return true;
}

bool DeltaWriter::Append(std::span<const std::pair<NodeId, NodeId>> edges,
                         std::string* error) {
  return AppendOps(EdgesToOps(edges), error);
}

// ----------------------------------------------------------- DeltaReader

DeltaReader::DeltaReader(const std::string& path, SnapshotIoMode mode) {
  if (mode == SnapshotIoMode::kMmap) {
    std::string map_error;
    mapping_ = MappedFile::Open(path, &map_error);
    if (mapping_ != nullptr) {
      data_ = mapping_->data();
      size_ = mapping_->size();
    }
    // Unmappable: fall through to the streaming read, like SnapshotReader.
  }
  if (data_ == nullptr) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      error_ = "cannot open " + path;
      return;
    }
    buffer_.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof()) {
      error_ = "cannot read " + path;
      return;
    }
    data_ = buffer_.data();
    size_ = buffer_.size();
  }
  if (size_ < kFileHeaderBytes) {
    error_ = "truncated delta log (smaller than header)";
    return;
  }
  if (!ParseFileHeader(data_, &format_version_, &base_checksum_,
                       &base_num_nodes_, &error_)) {
    return;
  }
  chain_checksum_ = base_checksum_;
  offset_ = kFileHeaderBytes;
}

bool DeltaReader::Next(DeltaRecord* out) {
  if (!ok() || truncated_) return false;
  if (offset_ >= size_) return false;  // clean end of log
  std::string why;
  uint64_t consumed = ParseRecord(data_, size_, offset_, format_version_,
                                  base_checksum_, last_seqno_ + 1,
                                  chain_checksum_, out, &why, &tail_torn_);
  if (consumed == 0) {
    truncated_ = true;
    tail_error_ = why;
    return false;
  }
  AdvanceChain(data_, offset_, consumed, &chain_checksum_);
  offset_ += consumed;
  ++last_seqno_;
  ++records_read_;
  return true;
}

bool DeltaReader::SeekTo(uint64_t offset, uint64_t last_seqno,
                         uint64_t chain_checksum) {
  if (!ok()) return false;
  // An offset past EOF means the log shrank (truncated and rewritten, or
  // compacted away) — no byte range to resume into; the caller re-reads
  // from the header for the real diagnosis.
  if (offset < kFileHeaderBytes || offset > size_) return false;
  offset_ = offset;
  last_seqno_ = last_seqno;
  chain_checksum_ = chain_checksum;
  truncated_ = false;
  tail_torn_ = false;
  tail_error_.clear();
  records_read_ = 0;
  return true;
}

// ------------------------------------------------------------- replaying

void DedupeNewEdges(const Graph& g,
                    std::vector<std::pair<NodeId, NodeId>>* edges) {
  std::sort(edges->begin(), edges->end());
  edges->erase(std::unique(edges->begin(), edges->end()), edges->end());
  std::erase_if(*edges, [&](const std::pair<NodeId, NodeId>& e) {
    return g.HasEdge(e.first, e.second);
  });
}

void NormalizeDeltaOps(const Graph& g, std::vector<DeltaOp>* ops) {
  // Last op per (src, dst) wins: an add-then-delete in one batch nets to a
  // delete, and vice versa. Insertion order decides, so walk forward and
  // overwrite.
  std::unordered_map<uint64_t, DeltaOpKind> last;
  last.reserve(ops->size());
  for (const DeltaOp& op : *ops) {
    last[(uint64_t{op.src} << 32) | op.dst] = op.kind;
  }
  std::vector<DeltaOp> out;
  out.reserve(last.size());
  for (const auto& [key, kind] : last) {
    const NodeId src = static_cast<NodeId>(key >> 32);
    const NodeId dst = static_cast<NodeId>(key & 0xffffffffu);
    // Drop no-ops against the graph: adding a present edge or deleting an
    // absent one changes nothing, and journaling it would bloat the log.
    const bool present = g.HasEdge(src, dst);
    if (kind == DeltaOpKind::kAdd ? present : !present) continue;
    out.push_back({src, dst, kind});
  }
  std::sort(out.begin(), out.end());
  *ops = std::move(out);
}

Graph ApplyDeltaOps(const Graph& g, std::span<const DeltaOp> ops,
                    bool already_normalized) {
  std::vector<DeltaOp> fresh(ops.begin(), ops.end());
  if (!already_normalized) NormalizeDeltaOps(g, &fresh);
  std::vector<LabelId> labels(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) labels[v] = g.Label(v);
  std::vector<std::pair<NodeId, NodeId>> adds;
  std::vector<std::pair<NodeId, NodeId>> deletes;
  for (const DeltaOp& op : fresh) {
    (op.kind == DeltaOpKind::kAdd ? adds : deletes)
        .emplace_back(op.src, op.dst);
  }
  std::sort(deletes.begin(), deletes.end());
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(g.NumEdges() + adds.size());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (NodeId w : g.OutNeighbors(v)) {
      if (!deletes.empty() &&
          std::binary_search(deletes.begin(), deletes.end(),
                             std::pair<NodeId, NodeId>{v, w})) {
        continue;
      }
      edges.emplace_back(v, w);
    }
  }
  edges.insert(edges.end(), adds.begin(), adds.end());
  return Graph::FromEdges(std::move(labels), std::move(edges));
}

Graph ApplyEdgesToGraph(const Graph& g,
                        std::span<const std::pair<NodeId, NodeId>> new_edges,
                        bool already_deduplicated) {
  return ApplyDeltaOps(g, EdgesToOps(new_edges), already_deduplicated);
}

bool ValidateEdgeEndpoints(std::span<const std::pair<NodeId, NodeId>> edges,
                           uint32_t num_nodes, std::string* error) {
  for (const auto& [src, dst] : edges) {
    if (src >= num_nodes || dst >= num_nodes) {
      SetError(error, "edge (" + std::to_string(src) + ", " +
                          std::to_string(dst) + ") references node " +
                          std::to_string(std::max(src, dst)) +
                          ", but the graph has only " +
                          std::to_string(num_nodes) + " nodes");
      return false;
    }
  }
  return true;
}

bool ValidateOpEndpoints(std::span<const DeltaOp> ops, uint32_t num_nodes,
                         std::string* error) {
  for (const DeltaOp& op : ops) {
    if (op.src >= num_nodes || op.dst >= num_nodes) {
      SetError(error, "edge (" + std::to_string(op.src) + ", " +
                          std::to_string(op.dst) + ") references node " +
                          std::to_string(std::max(op.src, op.dst)) +
                          ", but the graph has only " +
                          std::to_string(num_nodes) + " nodes");
      return false;
    }
  }
  return true;
}

bool CollectDeltaOps(DeltaReader& reader, uint32_t num_nodes,
                     uint64_t after_seqno, std::vector<DeltaOp>* ops,
                     ReplayStats* stats, std::string* error) {
  if (!reader.ok()) {
    SetError(error, reader.error());
    return false;
  }
  ReplayStats local;
  // A reader SeekTo'd straight to the resume point never re-reads record
  // after_seqno, so take the resume chain from its installed state; a
  // fresh reader discovers it when the scan passes that record.
  if (after_seqno == 0) {
    local.resume_chain = reader.base_checksum();
  } else if (reader.last_seqno() == after_seqno) {
    local.resume_chain = reader.chain_checksum();
  }
  local.end_chain = local.resume_chain;
  local.end_offset = reader.offset();
  DeltaRecord rec;
  while (reader.Next(&rec)) {
    if (rec.seqno <= after_seqno) {
      if (rec.seqno == after_seqno) {
        local.resume_chain = reader.chain_checksum();
        local.end_chain = local.resume_chain;
        local.end_offset = reader.offset();
      }
      continue;
    }
    std::string endpoint_error;
    if (!ValidateOpEndpoints(rec.ops, num_nodes, &endpoint_error)) {
      SetError(error, "delta record " + std::to_string(rec.seqno) + ": " +
                          endpoint_error + " — log does not match this base");
      return false;
    }
    ops->insert(ops->end(), rec.ops.begin(), rec.ops.end());
    ++local.records_applied;
    local.edges_in_records += rec.ops.size();
    local.delete_ops += rec.delete_count();
    local.last_seqno = rec.seqno;
    local.end_chain = reader.chain_checksum();
    local.end_offset = reader.offset();
  }
  if (stats != nullptr) *stats = local;
  return true;
}

std::optional<Graph> ReplayDelta(const Graph& base, DeltaReader& reader,
                                 std::string* error, ReplayStats* stats,
                                 uint64_t after_seqno) {
  std::vector<DeltaOp> ops;
  ReplayStats local;
  if (!CollectDeltaOps(reader, base.NumNodes(), after_seqno, &ops, &local,
                       error)) {
    return std::nullopt;
  }
  if (stats != nullptr) *stats = local;
  if (local.records_applied == 0) return base;  // copy of the base
  return ApplyDeltaOps(base, ops);
}

}  // namespace rigpm
