#ifndef RIGPM_STORAGE_LINEAGE_H_
#define RIGPM_STORAGE_LINEAGE_H_

#include <cstdint>
#include <string>

namespace rigpm {

/// Storage lineage for a compactable tenant: which (snapshot, delta log)
/// generation is current.
///
/// Compaction replaces a base snapshot + long delta log with a fresh
/// snapshot of the replayed graph + an empty log. The two files cannot be
/// swapped in place atomically (two renames, and the new log is bound to
/// the NEW snapshot's checksum — any in-between state mixes generations),
/// so the switch goes through one extra indirection: a tiny HEAD pointer
/// file (`<snapshot_path>.head`) naming the current generation's paths.
/// Publishing a new head via temp-file + rename + directory fsync is THE
/// atomic commit point; a crash anywhere before it leaves the head (or its
/// absence) pointing at the old generation, whose files are untouched —
/// the old lineage still serves. Generation files left behind by such a
/// crash are orphans that the next compaction unlinks and rewrites.
///
/// Generation 0 is the configured paths themselves (no head file needed);
/// generation N >= 1 lives at `<snapshot_path>.g<N>` / `<delta_path>.g<N>`.
/// Everyone that touches the pair — the daemon's catalog opens, refreshes,
/// and compactions, and `rigpm_cli delta append` — resolves the head first
/// and operates on the resolved paths.
struct Lineage {
  std::string snapshot_path;  // base snapshot currently serving
  std::string delta_path;     // delta log currently appended to
  uint64_t generation = 0;    // 0 = the configured paths verbatim
};

/// Path of the head pointer file for a configured snapshot path.
std::string LineageHeadPath(const std::string& snapshot_path);

/// Generation-N (N >= 1) file names derived from the configured paths.
std::string GenerationPath(const std::string& path, uint64_t generation);

/// Resolves the current lineage of the configured (snapshot, delta) pair:
/// reads the head file when one exists, otherwise returns generation 0
/// with the configured paths. A missing head is normal; a present but
/// malformed head is an error (*error set, false returned) — guessing
/// which generation is current risks serving or appending to the wrong
/// one.
bool ResolveLineage(const std::string& snapshot_path,
                    const std::string& delta_path, Lineage* out,
                    std::string* error);

/// Atomically publishes `lineage` as the current head for
/// `snapshot_path` (temp file + rename + parent directory fsync). This is
/// the compaction commit point: once it returns true, every subsequent
/// resolve sees the new generation; on failure or a crash before the
/// rename lands, the old head keeps serving.
bool PublishLineage(const std::string& snapshot_path, const Lineage& lineage,
                    std::string* error);

}  // namespace rigpm

#endif  // RIGPM_STORAGE_LINEAGE_H_
