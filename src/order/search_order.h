#ifndef RIGPM_ORDER_SEARCH_ORDER_H_
#define RIGPM_ORDER_SEARCH_ORDER_H_

#include <cstdint>
#include <vector>

#include "query/pattern_query.h"
#include "rig/rig.h"

namespace rigpm {

/// Search-order strategies for MJoin (Section 5.2, Table 4):
///  * kJO — greedy join ordering on RIG statistics: start at the query node
///    with the smallest cos(q); repeatedly append the connected node with
///    the smallest cos(q). Data-dependent, the paper's default.
///  * kRI — purely topological (Bonnici et al., RI): prefer nodes with the
///    most edge constraints toward the partial order, introduced as early
///    as possible; independent of the data graph.
///  * kBJ — optimal left-deep plan by dynamic programming over connected
///    subsets, minimizing estimated intermediate-result cost. Exponential
///    in |V(Q)|; falls back to kJO beyond `kBjMaxNodes` nodes.
enum class OrderStrategy : uint8_t { kJO, kRI, kBJ };

const char* OrderStrategyName(OrderStrategy s);

/// Largest query size the BJ dynamic program accepts (2^n subset DP).
constexpr uint32_t kBjMaxNodes = 20;

struct OrderStats {
  uint64_t plans_considered = 0;  // DP states expanded (BJ) / 1 otherwise
  bool fell_back_to_jo = false;   // BJ refused an oversized query
};

/// Computes a permutation of the query nodes. Every prefix of the returned
/// order induces a connected subquery (required to avoid Cartesian
/// products), provided the query itself is connected.
std::vector<QueryNodeId> ComputeSearchOrder(const PatternQuery& q,
                                            const Rig& rig,
                                            OrderStrategy strategy,
                                            OrderStats* stats = nullptr);

}  // namespace rigpm

#endif  // RIGPM_ORDER_SEARCH_ORDER_H_
