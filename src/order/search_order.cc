#include "order/search_order.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

namespace rigpm {

const char* OrderStrategyName(OrderStrategy s) {
  switch (s) {
    case OrderStrategy::kJO:
      return "JO";
    case OrderStrategy::kRI:
      return "RI";
    case OrderStrategy::kBJ:
      return "BJ";
  }
  return "?";
}

namespace {

// Undirected neighbor lists of the query.
std::vector<std::vector<QueryNodeId>> UndirectedNeighbors(
    const PatternQuery& q) {
  std::vector<std::vector<QueryNodeId>> nbrs(q.NumNodes());
  for (const QueryEdge& e : q.Edges()) {
    nbrs[e.from].push_back(e.to);
    nbrs[e.to].push_back(e.from);
  }
  for (auto& list : nbrs) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return nbrs;
}

std::vector<QueryNodeId> JoOrder(const PatternQuery& q, const Rig& rig) {
  const uint32_t n = q.NumNodes();
  auto nbrs = UndirectedNeighbors(q);
  std::vector<uint8_t> chosen(n, 0);
  std::vector<QueryNodeId> order;
  order.reserve(n);

  // Start node: smallest candidate occurrence set.
  QueryNodeId best = 0;
  for (QueryNodeId v = 1; v < n; ++v) {
    if (rig.Cos(v).Cardinality() < rig.Cos(best).Cardinality()) best = v;
  }
  order.push_back(best);
  chosen[best] = 1;

  while (order.size() < n) {
    QueryNodeId next = kInvalidNode;
    uint64_t best_card = std::numeric_limits<uint64_t>::max();
    for (QueryNodeId in_order : order) {
      for (QueryNodeId cand : nbrs[in_order]) {
        if (chosen[cand]) continue;
        uint64_t card = rig.Cos(cand).Cardinality();
        if (card < best_card || (card == best_card && cand < next)) {
          best_card = card;
          next = cand;
        }
      }
    }
    if (next == kInvalidNode) {
      // Disconnected query (should not happen per Definition 2.4): append
      // the smallest remaining set to stay total.
      for (QueryNodeId v = 0; v < n; ++v) {
        if (!chosen[v] &&
            (next == kInvalidNode ||
             rig.Cos(v).Cardinality() < rig.Cos(next).Cardinality())) {
          next = v;
        }
      }
    }
    order.push_back(next);
    chosen[next] = 1;
  }
  return order;
}

std::vector<QueryNodeId> RiOrder(const PatternQuery& q) {
  const uint32_t n = q.NumNodes();
  auto nbrs = UndirectedNeighbors(q);
  std::vector<uint8_t> chosen(n, 0);
  std::vector<QueryNodeId> order;
  order.reserve(n);

  // Start node: maximum degree (most constraints as early as possible).
  QueryNodeId best = 0;
  for (QueryNodeId v = 1; v < n; ++v) {
    if (nbrs[v].size() > nbrs[best].size()) best = v;
  }
  order.push_back(best);
  chosen[best] = 1;

  while (order.size() < n) {
    QueryNodeId next = kInvalidNode;
    // RI scoring: (1) most neighbors already in the order, (2) most
    // neighbors that are themselves adjacent to the order, (3) degree.
    std::tuple<int, int, int> best_score{-1, -1, -1};
    std::unordered_set<QueryNodeId> frontier;  // nodes adjacent to the order
    for (QueryNodeId in_order : order) {
      for (QueryNodeId w : nbrs[in_order]) {
        if (!chosen[w]) frontier.insert(w);
      }
    }
    for (QueryNodeId cand = 0; cand < n; ++cand) {
      if (chosen[cand]) continue;
      int s1 = 0, s2 = 0;
      for (QueryNodeId w : nbrs[cand]) {
        if (chosen[w]) {
          ++s1;
        } else if (frontier.count(w) > 0) {
          ++s2;
        }
      }
      if (s1 == 0 && !order.empty() && frontier.count(cand) == 0) {
        continue;  // keep the prefix connected whenever possible
      }
      std::tuple<int, int, int> score{s1, s2,
                                      static_cast<int>(nbrs[cand].size())};
      if (score > best_score) {
        best_score = score;
        next = cand;
      }
    }
    if (next == kInvalidNode) {
      for (QueryNodeId v = 0; v < n; ++v) {
        if (!chosen[v]) {
          next = v;
          break;
        }
      }
    }
    order.push_back(next);
    chosen[next] = 1;
  }
  return order;
}

// BJ: exact DP over connected subsets. Cost model: the estimated number of
// intermediate tuples after each extension, with per-edge selectivity
// |cos(e)| / (|cos(p)| * |cos(q)|) and independence across edges.
std::vector<QueryNodeId> BjOrder(const PatternQuery& q, const Rig& rig,
                                 OrderStats* stats) {
  const uint32_t n = q.NumNodes();
  auto nbrs = UndirectedNeighbors(q);

  // log-scale sizes avoid overflow: log|S| = sum log|cos(v)| + sum log sel(e).
  std::vector<double> log_card(n);
  for (QueryNodeId v = 0; v < n; ++v) {
    log_card[v] = std::log(std::max<uint64_t>(1, rig.Cos(v).Cardinality()));
  }
  std::vector<double> log_sel(q.NumEdges());
  for (QueryEdgeId e = 0; e < q.NumEdges(); ++e) {
    const QueryEdge& edge = q.Edge(e);
    double denom = std::max<double>(
        1.0, static_cast<double>(rig.Cos(edge.from).Cardinality()) *
                 static_cast<double>(rig.Cos(edge.to).Cardinality()));
    double num = std::max<double>(1.0, static_cast<double>(rig.EdgeCount(e)));
    log_sel[e] = std::log(num / denom);  // <= 0
  }

  auto subset_log_size = [&](uint32_t mask) {
    double s = 0.0;
    for (QueryNodeId v = 0; v < n; ++v) {
      if (mask & (1u << v)) s += log_card[v];
    }
    for (QueryEdgeId e = 0; e < q.NumEdges(); ++e) {
      const QueryEdge& edge = q.Edge(e);
      if ((mask & (1u << edge.from)) && (mask & (1u << edge.to))) {
        s += log_sel[e];
      }
    }
    return s;
  };

  const uint32_t full = (n == 32) ? 0xFFFFFFFFu : ((1u << n) - 1);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // cost[mask] = min total (sum over prefixes of exp(log_size)); we keep the
  // sum in linear space since individual terms can be huge but doubles cope.
  std::vector<double> cost(full + 1, kInf);
  std::vector<int8_t> last(full + 1, -1);
  uint64_t expanded = 0;

  for (QueryNodeId v = 0; v < n; ++v) {
    uint32_t m = 1u << v;
    cost[m] = std::exp(subset_log_size(m));
    last[m] = static_cast<int8_t>(v);
  }
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if (cost[mask] == kInf) continue;
    // Extend with a connected new node.
    for (QueryNodeId v = 0; v < n; ++v) {
      if (mask & (1u << v)) continue;
      bool connected = false;
      for (QueryNodeId w : nbrs[v]) {
        if (mask & (1u << w)) {
          connected = true;
          break;
        }
      }
      if (!connected && mask != 0) continue;
      uint32_t next_mask = mask | (1u << v);
      ++expanded;
      double next_cost = cost[mask] + std::exp(subset_log_size(next_mask));
      if (next_cost < cost[next_mask]) {
        cost[next_mask] = next_cost;
        last[next_mask] = static_cast<int8_t>(v);
      }
    }
  }
  if (stats != nullptr) stats->plans_considered = expanded;

  std::vector<QueryNodeId> order(n);
  uint32_t mask = full;
  for (uint32_t i = n; i-- > 0;) {
    QueryNodeId v = static_cast<QueryNodeId>(last[mask]);
    order[i] = v;
    mask &= ~(1u << v);
  }
  return order;
}

}  // namespace

std::vector<QueryNodeId> ComputeSearchOrder(const PatternQuery& q,
                                            const Rig& rig,
                                            OrderStrategy strategy,
                                            OrderStats* stats) {
  if (stats != nullptr) *stats = OrderStats();
  switch (strategy) {
    case OrderStrategy::kJO:
      if (stats != nullptr) stats->plans_considered = 1;
      return JoOrder(q, rig);
    case OrderStrategy::kRI:
      if (stats != nullptr) stats->plans_considered = 1;
      return RiOrder(q);
    case OrderStrategy::kBJ:
      if (q.NumNodes() > kBjMaxNodes) {
        if (stats != nullptr) stats->fell_back_to_jo = true;
        return JoOrder(q, rig);
      }
      return BjOrder(q, rig, stats);
  }
  return JoOrder(q, rig);
}

}  // namespace rigpm
