#ifndef RIGPM_SIM_FBSIM_BAS_H_
#define RIGPM_SIM_FBSIM_BAS_H_

#include "sim/match_sets.h"

namespace rigpm {

/// Algorithm 1, FBSimBas: the baseline double-simulation computation.
/// Starts from FB(q) = ms(q) and alternates forwardPrune / backwardPrune
/// sweeps over the query edges in arbitrary (index) order until FB is stable
/// or `opts.max_passes` is reached. The result always satisfies
///   os(q) ⊆ FB(q) ⊆ ms(q),
/// and equals the (unique, largest) double simulation of Definition 1 when
/// run to the fixpoint.
CandidateSets FBSimBas(const MatchContext& ctx, const PatternQuery& q,
                       const SimOptions& opts = {}, SimStats* stats = nullptr);

/// Forward simulation only (conditions 1 & 2 of Definition 1) — used by the
/// tests that reproduce Table 1.
CandidateSets ForwardSimulation(const MatchContext& ctx, const PatternQuery& q,
                                const SimOptions& opts = {});

/// Backward simulation only (conditions 1 & 3 of Definition 1).
CandidateSets BackwardSimulation(const MatchContext& ctx,
                                 const PatternQuery& q,
                                 const SimOptions& opts = {});

}  // namespace rigpm

#endif  // RIGPM_SIM_FBSIM_BAS_H_
