#include "sim/match_sets.h"

#include <algorithm>

namespace rigpm {

const char* ChildCheckModeName(ChildCheckMode m) {
  switch (m) {
    case ChildCheckMode::kBinSearch:
      return "binSearch";
    case ChildCheckMode::kBitIter:
      return "bitIter";
    case ChildCheckMode::kBitBat:
      return "bitBat";
  }
  return "?";
}

CandidateSets InitialMatchSets(const Graph& g, const PatternQuery& q) {
  CandidateSets sets(q.NumNodes());
  for (QueryNodeId i = 0; i < q.NumNodes(); ++i) {
    LabelId label = q.Label(i);
    if (label < g.NumLabels()) {
      // Deep copy preserving each container's encoding: a run-encoded label
      // list (contiguously-labeled generated graphs) stays run-encoded, and
      // a borrowed mmap'd payload becomes a private copy of the *encoded*
      // bytes — never a decode.
      sets[i] = g.LabelBitmap(label);
    }  // else: label absent from the graph -> empty candidate set
  }
  return sets;
}

namespace {

// Multi-source BFS with an optional depth bound. `forward` selects the edge
// direction to follow; the seeds themselves are NOT in the result (paths
// must have >= 1 edge).
Bitmap MultiSourceBfs(const Graph& g, const Bitmap& seeds, bool forward,
                      uint32_t max_hops) {
  std::vector<NodeId> frontier = seeds.ToVector();
  std::vector<uint8_t> in_result(g.NumNodes(), 0);
  std::vector<NodeId> result_nodes;
  uint32_t depth = 0;
  size_t level_end = frontier.size();
  for (size_t head = 0; head < frontier.size(); ++head) {
    if (head == level_end) {
      ++depth;
      level_end = frontier.size();
    }
    if (max_hops > 0 && depth >= max_hops) break;
    NodeId v = frontier[head];
    auto neighbors = forward ? g.OutNeighbors(v) : g.InNeighbors(v);
    for (NodeId w : neighbors) {
      if (!in_result[w]) {
        in_result[w] = 1;
        result_nodes.push_back(w);
        frontier.push_back(w);
      }
    }
  }
  std::sort(result_nodes.begin(), result_nodes.end());
  return Bitmap::FromSorted(result_nodes);
}

}  // namespace

Bitmap NodesReaching(const Graph& g, const Bitmap& targets,
                     uint32_t max_hops) {
  return MultiSourceBfs(g, targets, /*forward=*/false, max_hops);
}

Bitmap NodesReachableFrom(const Graph& g, const Bitmap& sources,
                          uint32_t max_hops) {
  return MultiSourceBfs(g, sources, /*forward=*/true, max_hops);
}

bool BoundedReaches(const Graph& g, NodeId u, NodeId v, uint32_t max_hops) {
  Bitmap seed;
  seed.Add(u);
  return MultiSourceBfs(g, seed, /*forward=*/true, max_hops).Contains(v);
}

namespace {

// Per-pair existence probe: does u have a forward partner in dst along e?
bool HasForwardPartner(const MatchContext& ctx, const QueryEdge& e, NodeId u,
                       const std::vector<NodeId>& dst_nodes,
                       ChildCheckMode mode, const Bitmap& dst_bitmap,
                       SimStats* stats) {
  const Graph& g = ctx.graph();
  if (e.kind == EdgeKind::kChild) {
    if (mode == ChildCheckMode::kBitIter) {
      if (stats != nullptr) ++stats->pair_checks;
      return g.OutBitmap(u).Intersects(dst_bitmap);
    }
    // binSearch: probe each candidate against u's sorted adjacency array.
    auto adj = g.OutNeighbors(u);
    for (NodeId w : dst_nodes) {
      if (stats != nullptr) ++stats->pair_checks;
      if (std::binary_search(adj.begin(), adj.end(), w)) return true;
    }
    return false;
  }
  for (NodeId w : dst_nodes) {
    if (stats != nullptr) ++stats->pair_checks;
    if (e.max_hops > 0 ? BoundedReaches(ctx.graph(), u, w, e.max_hops)
                       : ctx.reach().Reaches(u, w)) {
      return true;
    }
  }
  return false;
}

bool HasBackwardPartner(const MatchContext& ctx, const QueryEdge& e, NodeId v,
                        const std::vector<NodeId>& src_nodes,
                        ChildCheckMode mode, const Bitmap& src_bitmap,
                        SimStats* stats) {
  const Graph& g = ctx.graph();
  if (e.kind == EdgeKind::kChild) {
    if (mode == ChildCheckMode::kBitIter) {
      if (stats != nullptr) ++stats->pair_checks;
      return g.InBitmap(v).Intersects(src_bitmap);
    }
    auto adj = g.InNeighbors(v);
    for (NodeId u : src_nodes) {
      if (stats != nullptr) ++stats->pair_checks;
      if (std::binary_search(adj.begin(), adj.end(), u)) return true;
    }
    return false;
  }
  for (NodeId u : src_nodes) {
    if (stats != nullptr) ++stats->pair_checks;
    if (e.max_hops > 0 ? BoundedReaches(ctx.graph(), u, v, e.max_hops)
                       : ctx.reach().Reaches(u, v)) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool ForwardPruneEdge(const MatchContext& ctx, const QueryEdge& e, Bitmap* src,
                      const Bitmap& dst, const SimOptions& opts,
                      SimStats* stats) {
  const Graph& g = ctx.graph();
  const uint64_t before = src->Cardinality();
  if (dst.Empty()) {
    src->Clear();
  } else if (e.kind == EdgeKind::kChild &&
             opts.child_check == ChildCheckMode::kBitBat) {
    // Batch: src nodes with a child in dst are exactly the union of the
    // backward adjacency lists of dst, intersected with src (Section 4.5).
    std::vector<const Bitmap*> lists;
    lists.reserve(dst.Cardinality());
    dst.ForEach([&](NodeId w) { lists.push_back(&g.InBitmap(w)); });
    if (stats != nullptr) ++stats->pair_checks;
    src->AndWith(Bitmap::OrMany(lists));
  } else if (e.kind == EdgeKind::kDescendant && opts.batch_reachability) {
    // Batch: nodes that reach some dst node, via one reverse BFS.
    if (stats != nullptr) ++stats->pair_checks;
    src->AndWith(NodesReaching(g, dst, e.max_hops));
  } else {
    std::vector<NodeId> dst_nodes = dst.ToVector();
    std::vector<NodeId> survivors;
    src->ForEach([&](NodeId u) {
      if (HasForwardPartner(ctx, e, u, dst_nodes, opts.child_check, dst,
                            stats)) {
        survivors.push_back(u);
      }
    });
    *src = Bitmap::FromSorted(survivors);
  }
  const uint64_t after = src->Cardinality();
  if (stats != nullptr) stats->pruned_nodes += before - after;
  return after != before;
}

bool BackwardPruneEdge(const MatchContext& ctx, const QueryEdge& e,
                       const Bitmap& src, Bitmap* dst, const SimOptions& opts,
                       SimStats* stats) {
  const Graph& g = ctx.graph();
  const uint64_t before = dst->Cardinality();
  if (src.Empty()) {
    dst->Clear();
  } else if (e.kind == EdgeKind::kChild &&
             opts.child_check == ChildCheckMode::kBitBat) {
    std::vector<const Bitmap*> lists;
    lists.reserve(src.Cardinality());
    src.ForEach([&](NodeId u) { lists.push_back(&g.OutBitmap(u)); });
    if (stats != nullptr) ++stats->pair_checks;
    dst->AndWith(Bitmap::OrMany(lists));
  } else if (e.kind == EdgeKind::kDescendant && opts.batch_reachability) {
    if (stats != nullptr) ++stats->pair_checks;
    dst->AndWith(NodesReachableFrom(g, src, e.max_hops));
  } else {
    std::vector<NodeId> src_nodes = src.ToVector();
    std::vector<NodeId> survivors;
    dst->ForEach([&](NodeId v) {
      if (HasBackwardPartner(ctx, e, v, src_nodes, opts.child_check, src,
                             stats)) {
        survivors.push_back(v);
      }
    });
    *dst = Bitmap::FromSorted(survivors);
  }
  const uint64_t after = dst->Cardinality();
  if (stats != nullptr) stats->pruned_nodes += before - after;
  return after != before;
}

}  // namespace rigpm
