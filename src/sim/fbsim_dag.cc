#include "sim/fbsim_dag.h"

#include <cassert>

namespace rigpm {

bool FBSimDagPasses(const MatchContext& ctx, const PatternQuery& q,
                    std::span<const QueryNodeId> topo_order,
                    std::span<const QueryEdgeId> dag_edges, CandidateSets* fb,
                    const SimOptions& opts, SimStats* stats) {
  const uint32_t n = q.NumNodes();
  // Per-node incident DAG edges (restricted to the given subset).
  std::vector<std::vector<QueryEdgeId>> out_edges(n), in_edges(n);
  for (QueryEdgeId e : dag_edges) {
    out_edges[q.Edge(e).from].push_back(e);
    in_edges[q.Edge(e).to].push_back(e);
  }

  // Change flags (Section 4.5): an edge check can be skipped when the
  // candidate set it reads (the partner side) has not changed since the
  // previous pass — the surviving nodes then keep their witnesses.
  std::vector<uint8_t> changed_prev(n, 1);
  bool changed_overall = false;
  bool changed = true;
  int pass = 0;
  while (changed && (opts.max_passes == 0 || pass < opts.max_passes)) {
    ++pass;
    changed = false;
    std::vector<uint8_t> changed_now(n, 0);

    // forwardSim: bottom-up traversal, check outgoing edges of each node.
    for (auto it = topo_order.rbegin(); it != topo_order.rend(); ++it) {
      QueryNodeId v = *it;
      for (QueryEdgeId e : out_edges[v]) {
        const QueryEdge& edge = q.Edge(e);
        bool relevant = !opts.use_change_flags || changed_prev[edge.to] ||
                        changed_now[edge.to];
        if (!relevant) continue;
        if (ForwardPruneEdge(ctx, edge, &(*fb)[edge.from], (*fb)[edge.to],
                             opts, stats)) {
          changed_now[edge.from] = 1;
          changed = true;
        }
      }
    }

    // backwardSim: top-down traversal, check incoming edges of each node.
    for (QueryNodeId v : topo_order) {
      for (QueryEdgeId e : in_edges[v]) {
        const QueryEdge& edge = q.Edge(e);
        bool relevant = !opts.use_change_flags || changed_prev[edge.from] ||
                        changed_now[edge.from];
        if (!relevant) continue;
        if (BackwardPruneEdge(ctx, edge, (*fb)[edge.from], &(*fb)[edge.to],
                              opts, stats)) {
          changed_now[edge.to] = 1;
          changed = true;
        }
      }
    }

    changed_prev = std::move(changed_now);
    changed_overall |= changed;
  }
  if (stats != nullptr) stats->passes += pass;
  return changed_overall;
}

CandidateSets FBSimDag(const MatchContext& ctx, const PatternQuery& q,
                       const SimOptions& opts, SimStats* stats) {
  std::vector<QueryNodeId> topo;
  [[maybe_unused]] bool is_dag = q.IsDag(&topo);
  assert(is_dag && "FBSimDag requires a DAG pattern query");

  std::vector<QueryEdgeId> all_edges(q.NumEdges());
  for (QueryEdgeId e = 0; e < q.NumEdges(); ++e) all_edges[e] = e;

  CandidateSets fb = InitialMatchSets(ctx.graph(), q);
  FBSimDagPasses(ctx, q, topo, all_edges, &fb, opts, stats);
  return fb;
}

}  // namespace rigpm
