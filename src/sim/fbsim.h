#ifndef RIGPM_SIM_FBSIM_H_
#define RIGPM_SIM_FBSIM_H_

#include <cstdint>

#include "sim/match_sets.h"

namespace rigpm {

/// Which double-simulation algorithm BuildRIG / GM should run (Fig. 12b):
///  * kBas    — Algorithm 1 (arbitrary edge order, "Gra" in the figure),
///  * kDag    — Algorithm 2 / Algorithm 3 without the convergence tuning
///              ("Dag"): topological-order DP, plus the Δ back-edge loop
///              for cyclic queries,
///  * kDagMap — kDag with the change-flag index and batch checks enabled
///              ("DagMap", the tuned default).
enum class SimAlgorithm : uint8_t { kBas, kDag, kDagMap };

const char* SimAlgorithmName(SimAlgorithm a);

/// Algorithm 3, FBSim ("Dag+Δ"): decomposes a cyclic query into a DAG and a
/// back-edge set, alternating FBSimDag passes on the DAG with FBSimBas-style
/// sweeps on the back edges until the relation stabilizes. Falls back to
/// plain FBSimDag for DAG queries.
CandidateSets FBSim(const MatchContext& ctx, const PatternQuery& q,
                    const SimOptions& opts = {}, SimStats* stats = nullptr);

/// Dispatches on `algorithm`, applying the option overrides each named
/// variant implies.
CandidateSets ComputeDoubleSimulation(const MatchContext& ctx,
                                      const PatternQuery& q,
                                      SimAlgorithm algorithm,
                                      SimOptions opts = {},
                                      SimStats* stats = nullptr);

}  // namespace rigpm

#endif  // RIGPM_SIM_FBSIM_H_
