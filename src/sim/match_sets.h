#ifndef RIGPM_SIM_MATCH_SETS_H_
#define RIGPM_SIM_MATCH_SETS_H_

#include <cstdint>
#include <vector>

#include "bitmap/bitmap.h"
#include "graph/graph.h"
#include "query/pattern_query.h"
#include "reach/reachability.h"

namespace rigpm {

/// How child-edge (direct connectivity) constraints are checked during
/// simulation and RIG construction (Section 4.5, Fig. 12a):
///  * kBinSearch — binary-search candidate ids in sorted adjacency arrays,
///  * kBitIter   — per-node bitmap intersection with early exit,
///  * kBitBat    — batch: one union-of-adjacency-lists ∩ candidate-set
///                 operation removes all violating nodes of an edge at once.
enum class ChildCheckMode : uint8_t { kBinSearch, kBitIter, kBitBat };

const char* ChildCheckModeName(ChildCheckMode m);

/// Tuning knobs for the double-simulation computation.
struct SimOptions {
  /// 0 = iterate to the exact fixpoint. N > 0 stops after N passes — the
  /// approximation the paper applies (N = 3), which keeps FB a superset of
  /// the true double simulation and therefore still a sound RIG node set.
  int max_passes = 0;

  ChildCheckMode child_check = ChildCheckMode::kBitBat;

  /// Skip re-checking query nodes none of whose neighbors changed in the
  /// previous pass ("speedup convergence" flags of Section 4.5).
  bool use_change_flags = true;

  /// Batch descendant-edge pruning with one multi-source BFS per edge per
  /// pass instead of per-pair reachability probes. Exact either way; the
  /// BFS variant is the tuned default (it plays the role the bit-batch
  /// operation plays for child edges).
  bool batch_reachability = true;
};

/// Counters the experiments report.
struct SimStats {
  int passes = 0;
  uint64_t pair_checks = 0;   // reachability/adjacency probes issued
  uint64_t pruned_nodes = 0;  // candidate deletions across all passes

  void Reset() { *this = SimStats(); }
};

/// A candidate relation: one bitmap of data nodes per query node. Used for
/// ms(q) (match sets), FB(q) (double simulation) and cos(q) (RIG node sets).
/// The bitmaps are container-polymorphic (bitmap/bitmap.h): a candidate set
/// seeded from a clustered label inverted list starts run-encoded and the
/// pruning kernels (And/Or/AndNot) consume every container kind natively,
/// so compression survives into the simulation fixpoint rather than being
/// paid back on first use.
using CandidateSets = std::vector<Bitmap>;

/// True iff a path of 1..max_hops edges leads from u to v (depth-limited
/// BFS; used by bounded descendant edges). Declared ahead of MatchContext,
/// which inlines it.
bool BoundedReaches(const Graph& g, NodeId u, NodeId v, uint32_t max_hops);

/// Binds the data graph with a reachability index; every simulation/RIG
/// routine works through this context.
class MatchContext {
 public:
  MatchContext(const Graph& g, const ReachabilityIndex& reach)
      : graph_(g), reach_(reach) {}

  const Graph& graph() const { return graph_; }
  const ReachabilityIndex& reach() const { return reach_; }

  /// Pair-level query-edge match test (Section 4.1): labels are assumed
  /// already satisfied; checks the structural part only. Bounded descendant
  /// edges (max_hops > 0) are answered with a depth-limited BFS.
  bool EdgePairMatch(const QueryEdge& e, NodeId u, NodeId v) const {
    if (e.kind == EdgeKind::kChild) return graph_.HasEdge(u, v);
    if (e.max_hops > 0) return BoundedReaches(graph_, u, v, e.max_hops);
    return reach_.Reaches(u, v);
  }

 private:
  const Graph& graph_;
  const ReachabilityIndex& reach_;
};

/// ms(q) for every query node: the label inverted lists (Section 4.1).
CandidateSets InitialMatchSets(const Graph& g, const PatternQuery& q);

/// Prunes `src` (candidates of e.from) to the nodes that have at least one
/// forward match in `dst` (candidates of e.to) along edge `e`. Returns true
/// iff `src` changed. This is the single-edge building block all FB
/// algorithms share.
bool ForwardPruneEdge(const MatchContext& ctx, const QueryEdge& e, Bitmap* src,
                      const Bitmap& dst, const SimOptions& opts,
                      SimStats* stats);

/// Symmetric: prunes `dst` to nodes with a backward match in `src`.
bool BackwardPruneEdge(const MatchContext& ctx, const QueryEdge& e,
                       const Bitmap& src, Bitmap* dst, const SimOptions& opts,
                       SimStats* stats);

/// Set of nodes that can reach some node of `targets` via >= 1 edge
/// (reverse multi-source BFS). Exposed for tests and the RIG builder.
/// `max_hops` = 0 means unbounded; otherwise paths of at most that length.
Bitmap NodesReaching(const Graph& g, const Bitmap& targets,
                     uint32_t max_hops = 0);

/// Set of nodes reachable from some node of `sources` via >= 1 edge.
Bitmap NodesReachableFrom(const Graph& g, const Bitmap& sources,
                          uint32_t max_hops = 0);

}  // namespace rigpm

#endif  // RIGPM_SIM_MATCH_SETS_H_
