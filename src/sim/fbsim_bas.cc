#include "sim/fbsim_bas.h"

namespace rigpm {

namespace {

// One forwardPrune sweep (Algorithm 1): for every edge e = (qi, qj), remove
// the nodes of FB(qi) with no forward partner in FB(qj). Returns whether
// anything changed.
bool ForwardSweep(const MatchContext& ctx, const PatternQuery& q,
                  CandidateSets* fb, const SimOptions& opts, SimStats* stats) {
  bool changed = false;
  for (const QueryEdge& e : q.Edges()) {
    changed |=
        ForwardPruneEdge(ctx, e, &(*fb)[e.from], (*fb)[e.to], opts, stats);
  }
  return changed;
}

bool BackwardSweep(const MatchContext& ctx, const PatternQuery& q,
                   CandidateSets* fb, const SimOptions& opts,
                   SimStats* stats) {
  bool changed = false;
  for (const QueryEdge& e : q.Edges()) {
    changed |=
        BackwardPruneEdge(ctx, e, (*fb)[e.from], &(*fb)[e.to], opts, stats);
  }
  return changed;
}

}  // namespace

CandidateSets FBSimBas(const MatchContext& ctx, const PatternQuery& q,
                       const SimOptions& opts, SimStats* stats) {
  CandidateSets fb = InitialMatchSets(ctx.graph(), q);
  int pass = 0;
  bool changed = true;
  while (changed && (opts.max_passes == 0 || pass < opts.max_passes)) {
    ++pass;
    changed = ForwardSweep(ctx, q, &fb, opts, stats);
    changed |= BackwardSweep(ctx, q, &fb, opts, stats);
  }
  if (stats != nullptr) stats->passes = pass;
  return fb;
}

CandidateSets ForwardSimulation(const MatchContext& ctx, const PatternQuery& q,
                                const SimOptions& opts) {
  CandidateSets fb = InitialMatchSets(ctx.graph(), q);
  int pass = 0;
  while (ForwardSweep(ctx, q, &fb, opts, nullptr)) {
    if (opts.max_passes != 0 && ++pass >= opts.max_passes) break;
  }
  return fb;
}

CandidateSets BackwardSimulation(const MatchContext& ctx,
                                 const PatternQuery& q,
                                 const SimOptions& opts) {
  CandidateSets fb = InitialMatchSets(ctx.graph(), q);
  int pass = 0;
  while (BackwardSweep(ctx, q, &fb, opts, nullptr)) {
    if (opts.max_passes != 0 && ++pass >= opts.max_passes) break;
  }
  return fb;
}

}  // namespace rigpm
