#include "sim/fbsim.h"

#include "query/dag_decomposition.h"
#include "sim/fbsim_bas.h"
#include "sim/fbsim_dag.h"

namespace rigpm {

const char* SimAlgorithmName(SimAlgorithm a) {
  switch (a) {
    case SimAlgorithm::kBas:
      return "Gra";
    case SimAlgorithm::kDag:
      return "Dag";
    case SimAlgorithm::kDagMap:
      return "DagMap";
  }
  return "?";
}

CandidateSets FBSim(const MatchContext& ctx, const PatternQuery& q,
                    const SimOptions& opts, SimStats* stats) {
  DagDecomposition decomp = DecomposeDag(q);
  CandidateSets fb = InitialMatchSets(ctx.graph(), q);

  if (decomp.IsDagQuery()) {
    FBSimDagPasses(ctx, q, decomp.topo_order, decomp.dag_edges, &fb, opts,
                   stats);
    return fb;
  }

  // Dag+Δ: alternate DAG passes with back-edge sweeps. Inner DAG passes run
  // with the caller's pass budget; the outer loop iterates until neither
  // phase changes FB (or the pass budget is exhausted).
  int outer = 0;
  bool changed = true;
  while (changed && (opts.max_passes == 0 || outer < opts.max_passes)) {
    ++outer;
    changed = FBSimDagPasses(ctx, q, decomp.topo_order, decomp.dag_edges, &fb,
                             opts, stats);
    for (QueryEdgeId e : decomp.back_edges) {
      const QueryEdge& edge = q.Edge(e);
      changed |=
          ForwardPruneEdge(ctx, edge, &fb[edge.from], fb[edge.to], opts, stats);
      changed |= BackwardPruneEdge(ctx, edge, fb[edge.from], &fb[edge.to],
                                   opts, stats);
    }
  }
  return fb;
}

CandidateSets ComputeDoubleSimulation(const MatchContext& ctx,
                                      const PatternQuery& q,
                                      SimAlgorithm algorithm, SimOptions opts,
                                      SimStats* stats) {
  switch (algorithm) {
    case SimAlgorithm::kBas:
      // The untuned baseline: no change flags, element-at-a-time checks.
      opts.use_change_flags = false;
      opts.child_check = ChildCheckMode::kBitIter;
      opts.batch_reachability = false;
      return FBSimBas(ctx, q, opts, stats);
    case SimAlgorithm::kDag:
      opts.use_change_flags = false;
      opts.child_check = ChildCheckMode::kBitIter;
      opts.batch_reachability = false;
      return FBSim(ctx, q, opts, stats);
    case SimAlgorithm::kDagMap:
      // Tuned variant: change flags on; the child-check mode and batch
      // reachability settings are taken from `opts` (Fig. 12a compares the
      // check modes under this algorithm).
      opts.use_change_flags = true;
      return FBSim(ctx, q, opts, stats);
  }
  return {};
}

}  // namespace rigpm
