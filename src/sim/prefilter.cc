#include "sim/prefilter.h"

namespace rigpm {

CandidateSets PreFilter(const MatchContext& ctx, const PatternQuery& q,
                        const SimOptions& opts, SimStats* stats) {
  CandidateSets sets = InitialMatchSets(ctx.graph(), q);
  // One forward sweep ...
  for (const QueryEdge& e : q.Edges()) {
    ForwardPruneEdge(ctx, e, &sets[e.from], sets[e.to], opts, stats);
  }
  // ... and one backward sweep. No fixpoint iteration.
  for (const QueryEdge& e : q.Edges()) {
    BackwardPruneEdge(ctx, e, sets[e.from], &sets[e.to], opts, stats);
  }
  if (stats != nullptr) stats->passes = 1;
  return sets;
}

}  // namespace rigpm
