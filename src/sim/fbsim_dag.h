#ifndef RIGPM_SIM_FBSIM_DAG_H_
#define RIGPM_SIM_FBSIM_DAG_H_

#include <span>

#include "query/dag_decomposition.h"
#include "sim/match_sets.h"

namespace rigpm {

/// Algorithm 2, FBSimDag: double simulation for DAG pattern queries via
/// dynamic programming over topological orders. Each pass runs
///  * forwardSim  — a bottom-up (reverse topological) traversal checking
///    every node's outgoing edges, then
///  * backwardSim — a top-down traversal checking incoming edges.
/// Converges in fewer passes than FBSimBas because after a bottom-up
/// traversal every surviving node forward-simulates its query node within
/// the pass (Theorem 4.1). Precondition: `q` is a DAG (checked).
CandidateSets FBSimDag(const MatchContext& ctx, const PatternQuery& q,
                       const SimOptions& opts = {}, SimStats* stats = nullptr);

/// In-place variant used as a phase by FBSim (Dag+Δ): runs forwardSim /
/// backwardSim passes over the DAG part described by `topo_order` and the
/// edge subset `dag_edges` until stable. Returns true if `fb` changed.
bool FBSimDagPasses(const MatchContext& ctx, const PatternQuery& q,
                    std::span<const QueryNodeId> topo_order,
                    std::span<const QueryEdgeId> dag_edges, CandidateSets* fb,
                    const SimOptions& opts, SimStats* stats);

}  // namespace rigpm

#endif  // RIGPM_SIM_FBSIM_DAG_H_
