#ifndef RIGPM_SIM_PREFILTER_H_
#define RIGPM_SIM_PREFILTER_H_

#include "sim/match_sets.h"

namespace rigpm {

/// Node pre-filtering after Chen et al. [11] / Zeng & Zhuge [63], applied to
/// JM and TM (and optionally GM) before evaluation (Section 7.1).
///
/// A single forward sweep followed by a single backward sweep over the query
/// edges: each candidate must have at least one structural partner per
/// incident edge. Unlike double simulation this does not iterate to a
/// fixpoint, so it prunes strictly less — that gap is what Fig. 13 measures
/// between GM-F and GM.
///
/// Sound: the result always contains the occurrence sets os(q).
CandidateSets PreFilter(const MatchContext& ctx, const PatternQuery& q,
                        const SimOptions& opts = {}, SimStats* stats = nullptr);

}  // namespace rigpm

#endif  // RIGPM_SIM_PREFILTER_H_
