#ifndef RIGPM_BENCH_UTIL_DATASETS_H_
#define RIGPM_BENCH_UTIL_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace rigpm {

/// Synthetic analogue of one of the nine SNAP datasets of Table 2. The real
/// files cannot be redistributed, so the bench harness regenerates graphs
/// with the same |V| / |E| / |L| proportions and a degree distribution of
/// the right family (heavy-tailed for web/social graphs, acyclic for the
/// citation/co-purchase graphs). Absolute runtimes differ from the paper;
/// the relative behaviour of the algorithms — which is what every figure
/// reports — is preserved.
struct DatasetSpec {
  enum class Shape { kPowerLaw, kErdosRenyi, kDag, kLayeredDag };

  std::string name;       // paper's abbreviation: yt, hu, hp, ep, db, ...
  std::string domain;     // Biology, Social, ...
  uint32_t base_nodes = 0;
  uint64_t base_edges = 0;
  uint32_t num_labels = 0;
  Shape shape = Shape::kPowerLaw;
  double label_zipf = 0.3;  // mild label skew, like real attribute data
};

/// All nine datasets of Table 2.
const std::vector<DatasetSpec>& DatasetRegistry();
const DatasetSpec& DatasetByName(const std::string& name);

/// Scale factor applied to base_nodes/base_edges when generating. Read from
/// the RIGPM_SCALE environment variable; defaults to 0.1 so the full bench
/// suite completes in minutes on a laptop. Set RIGPM_SCALE=1 for
/// paper-sized graphs.
double DatasetScaleFromEnv();

/// Generates the dataset at the given scale (deterministic for a seed).
Graph MakeDataset(const DatasetSpec& spec, double scale, uint64_t seed = 7);

/// Convenience: registry lookup + env scale.
Graph MakeDatasetByName(const std::string& name);

/// Variant used by the label-scaling experiment (Fig. 10): same shape and
/// size, different label alphabet.
Graph MakeDatasetWithLabels(const DatasetSpec& spec, double scale,
                            uint32_t num_labels, uint64_t seed = 7);

/// Variant used by the size-scaling experiment (Fig. 11): same shape,
/// explicit node count (edges scaled proportionally).
Graph MakeDatasetWithNodes(const DatasetSpec& spec, uint32_t num_nodes,
                           uint64_t seed = 7);

}  // namespace rigpm

#endif  // RIGPM_BENCH_UTIL_DATASETS_H_
