#ifndef RIGPM_BENCH_UTIL_TABLE_PRINTER_H_
#define RIGPM_BENCH_UTIL_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace rigpm {

/// Column-aligned plain-text table, the output format of every bench binary
/// (one table per paper table/figure).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Renders to `out` with a header underline.
  void Print(std::ostream& out) const;

  /// Renders to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rigpm

#endif  // RIGPM_BENCH_UTIL_TABLE_PRINTER_H_
