#ifndef RIGPM_BENCH_UTIL_HARNESS_H_
#define RIGPM_BENCH_UTIL_HARNESS_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

namespace rigpm {

/// Wall-clock timing of a callable, in milliseconds.
double TimeMs(const std::function<void()>& fn);

/// Environment-variable knobs shared by the bench binaries.
///  * RIGPM_LIMIT      — per-query match cap (paper: 1e7; default 1e5 at the
///                       reduced default scale),
///  * RIGPM_TIMEOUT_MS — per-query time budget (paper: 10 min; default 10 s).
uint64_t MatchLimitFromEnv();
double TimeoutMsFromEnv();

/// Formats a duration like the paper's tables: seconds with 2-3 significant
/// digits, or the status marker ("TO", "OM", "NA") when not ok.
std::string FormatSeconds(double ms);

/// Prints the standard bench banner (dataset summary, scale, limits).
void PrintBenchHeader(const std::string& title, const std::string& details);

}  // namespace rigpm

#endif  // RIGPM_BENCH_UTIL_HARNESS_H_
