#include "bench_util/harness.h"

#include <cstdio>
#include <cstdlib>

namespace rigpm {

double TimeMs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

uint64_t MatchLimitFromEnv() {
  const char* env = std::getenv("RIGPM_LIMIT");
  if (env == nullptr) return 100'000;
  uint64_t v = std::strtoull(env, nullptr, 10);
  return v > 0 ? v : 100'000;
}

double TimeoutMsFromEnv() {
  const char* env = std::getenv("RIGPM_TIMEOUT_MS");
  if (env == nullptr) return 10'000.0;
  double v = std::atof(env);
  return v > 0 ? v : 10'000.0;
}

std::string FormatSeconds(double ms) {
  char buf[32];
  double s = ms / 1000.0;
  if (s < 0.01) {
    std::snprintf(buf, sizeof(buf), "%.4f", s);
  } else if (s < 10) {
    std::snprintf(buf, sizeof(buf), "%.3f", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", s);
  }
  return buf;
}

void PrintBenchHeader(const std::string& title, const std::string& details) {
  static constexpr char kRule[] =
      "==============================================================";
  std::printf("%s\n", kRule);
  std::printf("%s\n", title.c_str());
  if (!details.empty()) std::printf("%s\n", details.c_str());
  std::printf("%s\n", kRule);
}

}  // namespace rigpm
