#include "bench_util/table_printer.h"

#include <algorithm>
#include <iostream>

namespace rigpm {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      for (size_t pad = cells[c].size(); pad < widths[c] + 2; ++pad) out << ' ';
    }
    out << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::Print() const { Print(std::cout); }

}  // namespace rigpm
