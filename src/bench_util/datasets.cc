#include "bench_util/datasets.h"

#include <algorithm>
#include <cstdlib>

#include "graph/generators.h"

namespace rigpm {

namespace {

std::vector<DatasetSpec> BuildRegistry() {
  using Shape = DatasetSpec::Shape;
  return {
      // Biology: small, moderately dense, many labels.
      {"yt", "Biology", 3'100, 12'000, 71, Shape::kErdosRenyi, 0.3},
      {"hu", "Biology", 4'600, 86'000, 44, Shape::kPowerLaw, 0.3},
      {"hp", "Biology", 9'400, 35'000, 307, Shape::kErdosRenyi, 0.3},
      // Social.
      {"ep", "Social", 76'000, 509'000, 20, Shape::kPowerLaw, 0.3},
      {"db", "Social", 317'000, 1'049'000, 20, Shape::kDag, 0.3},
      // Communication.
      {"em", "Communication", 265'000, 420'000, 20, Shape::kPowerLaw, 0.3},
      // Product co-purchasing.
      {"am", "Product", 403'000, 3'500'000, 3, Shape::kDag, 0.2},
      // Web.
      {"bs", "Web", 685'000, 7'600'000, 5, Shape::kPowerLaw, 0.2},
      {"go", "Web", 876'000, 5'100'000, 5, Shape::kPowerLaw, 0.2},
  };
}

}  // namespace

const std::vector<DatasetSpec>& DatasetRegistry() {
  static const std::vector<DatasetSpec>& registry =
      *new std::vector<DatasetSpec>(BuildRegistry());
  return registry;
}

const DatasetSpec& DatasetByName(const std::string& name) {
  for (const DatasetSpec& spec : DatasetRegistry()) {
    if (spec.name == name) return spec;
  }
  std::abort();  // unknown dataset name is a programming error
}

double DatasetScaleFromEnv() {
  const char* env = std::getenv("RIGPM_SCALE");
  if (env == nullptr) return 0.1;
  double scale = std::atof(env);
  return scale > 0.0 ? scale : 0.1;
}

Graph MakeDataset(const DatasetSpec& spec, double scale, uint64_t seed) {
  GeneratorOptions opts;
  opts.num_nodes = std::max<uint32_t>(
      500, static_cast<uint32_t>(spec.base_nodes * scale));
  opts.num_edges = std::max<uint64_t>(
      2000, static_cast<uint64_t>(spec.base_edges * scale));
  opts.num_labels = spec.num_labels;
  opts.label_zipf = spec.label_zipf;
  opts.seed = seed;
  switch (spec.shape) {
    case DatasetSpec::Shape::kPowerLaw:
      return GeneratePowerLaw(opts);
    case DatasetSpec::Shape::kErdosRenyi:
      return GenerateErdosRenyi(opts);
    case DatasetSpec::Shape::kDag:
      return GenerateRandomDag(opts);
    case DatasetSpec::Shape::kLayeredDag:
      return GenerateLayeredDag(opts, /*layers=*/12);
  }
  return GeneratePowerLaw(opts);
}

Graph MakeDatasetByName(const std::string& name) {
  return MakeDataset(DatasetByName(name), DatasetScaleFromEnv());
}

Graph MakeDatasetWithLabels(const DatasetSpec& spec, double scale,
                            uint32_t num_labels, uint64_t seed) {
  DatasetSpec modified = spec;
  modified.num_labels = num_labels;
  return MakeDataset(modified, scale, seed);
}

Graph MakeDatasetWithNodes(const DatasetSpec& spec, uint32_t num_nodes,
                           uint64_t seed) {
  DatasetSpec modified = spec;
  double ratio = static_cast<double>(num_nodes) /
                 static_cast<double>(spec.base_nodes);
  modified.base_nodes = num_nodes;
  modified.base_edges =
      std::max<uint64_t>(1, static_cast<uint64_t>(spec.base_edges * ratio));
  return MakeDataset(modified, /*scale=*/1.0, seed);
}

}  // namespace rigpm
