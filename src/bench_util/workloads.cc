#include "bench_util/workloads.h"

#include <algorithm>
#include <random>

#include "query/query_generator.h"

namespace rigpm {

namespace {

// Labels sorted by decreasing frequency in the data graph.
std::vector<LabelId> FrequentLabels(const Graph& g) {
  std::vector<LabelId> labels(g.NumLabels());
  for (LabelId a = 0; a < g.NumLabels(); ++a) labels[a] = a;
  std::sort(labels.begin(), labels.end(), [&](LabelId a, LabelId b) {
    return g.LabelCount(a) > g.LabelCount(b);
  });
  return labels;
}

}  // namespace

std::vector<NamedQuery> TemplateWorkload(const Graph& g,
                                         const std::vector<std::string>& names,
                                         QueryVariant variant, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<LabelId> frequent = FrequentLabels(g);
  // Instances draw labels from the top half of the frequency ranking so the
  // match sets are non-trivial (rare labels would make everything empty).
  const size_t pool = std::max<size_t>(1, frequent.size() / 2);

  std::vector<NamedQuery> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    const QueryTemplate& tpl = TemplateByName(name);
    std::vector<LabelId> labels(tpl.num_nodes);
    std::uniform_int_distribution<size_t> pick(0, pool - 1);
    for (auto& l : labels) l = frequent[pick(rng)];
    std::vector<QueryEdge> edges;
    edges.reserve(tpl.edges.size());
    for (size_t i = 0; i < tpl.edges.size(); ++i) {
      EdgeKind kind = EdgeKind::kChild;
      switch (variant) {
        case QueryVariant::kChildOnly:
          kind = EdgeKind::kChild;
          break;
        case QueryVariant::kDescendantOnly:
          kind = EdgeKind::kDescendant;
          break;
        default:
          kind = tpl.hybrid_kinds[i];
          break;
      }
      edges.push_back({tpl.edges[i].first, tpl.edges[i].second, kind});
    }
    out.push_back(
        {name, PatternQuery::FromParts(std::move(labels), std::move(edges))});
  }
  return out;
}

std::vector<std::string> RepresentativeTemplateNames() {
  return {"HQ0",  "HQ3",  "HQ5",   // acyclic
          "HQ6",  "HQ8",  "HQ17",  // cyclic
          "HQ11", "HQ12", "HQ19",  // clique
          "HQ10", "HQ14", "HQ16"}; // combo
}

std::vector<NamedQuery> ExtractedWorkload(const Graph& g,
                                          const std::vector<uint32_t>& sizes,
                                          QueryVariant variant,
                                          uint32_t count_per_size,
                                          uint64_t seed) {
  std::vector<NamedQuery> out;
  for (uint32_t size : sizes) {
    for (uint32_t i = 0; i < count_per_size; ++i) {
      ExtractedQueryOptions opts;
      opts.num_nodes = size;
      opts.variant = variant;
      opts.seed = seed + size * 1000 + i;
      auto q = ExtractQueryFromGraph(g, opts);
      if (!q.has_value()) continue;
      std::string name = std::to_string(size) + "N";
      if (count_per_size > 1) name += "_" + std::to_string(i);
      out.push_back({std::move(name), std::move(*q)});
    }
  }
  return out;
}

}  // namespace rigpm
