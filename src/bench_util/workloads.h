#ifndef RIGPM_BENCH_UTIL_WORKLOADS_H_
#define RIGPM_BENCH_UTIL_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "query/pattern_query.h"
#include "query/query_templates.h"

namespace rigpm {

/// One query of a bench workload.
struct NamedQuery {
  std::string name;
  PatternQuery query;
};

/// Instantiates the given Fig. 7 templates against a data graph's label
/// alphabet. Labels are drawn from the data graph's most frequent labels so
/// instances are selective-but-nonempty with high probability; seeded and
/// deterministic.
std::vector<NamedQuery> TemplateWorkload(const Graph& g,
                                         const std::vector<std::string>& names,
                                         QueryVariant variant,
                                         uint64_t seed = 11);

/// The representative per-class selection most figures plot: three queries
/// from each of the acyclic / cyclic / clique / combo classes.
std::vector<std::string> RepresentativeTemplateNames();

/// Extracted queries with guaranteed matches (Section 7.1's random queries
/// for the biology datasets): `count` queries of each size in `sizes`.
std::vector<NamedQuery> ExtractedWorkload(const Graph& g,
                                          const std::vector<uint32_t>& sizes,
                                          QueryVariant variant,
                                          uint32_t count_per_size = 1,
                                          uint64_t seed = 13);

}  // namespace rigpm

#endif  // RIGPM_BENCH_UTIL_WORKLOADS_H_
