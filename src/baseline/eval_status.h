#ifndef RIGPM_BASELINE_EVAL_STATUS_H_
#define RIGPM_BASELINE_EVAL_STATUS_H_

namespace rigpm {

/// Outcome of a baseline evaluation run. The experiments in Section 7 report
/// unsolved queries in two buckets — out-of-memory (JM's typical failure)
/// and timeout (TM's typical failure) — so the baselines track both instead
/// of aborting the process.
enum class EvalStatus {
  kOk,
  kOutOfMemory,  // intermediate results exceeded the configured budget
  kTimeout,      // wall-clock budget exhausted
  kUnsupported,  // engine cannot express the query (e.g. ISO + descendant)
};

inline const char* EvalStatusName(EvalStatus s) {
  switch (s) {
    case EvalStatus::kOk:
      return "ok";
    case EvalStatus::kOutOfMemory:
      return "OM";
    case EvalStatus::kTimeout:
      return "TO";
    case EvalStatus::kUnsupported:
      return "NA";
  }
  return "?";
}

}  // namespace rigpm

#endif  // RIGPM_BASELINE_EVAL_STATUS_H_
