#ifndef RIGPM_BASELINE_WCOJ_ENGINE_H_
#define RIGPM_BASELINE_WCOJ_ENGINE_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "baseline/eval_status.h"
#include "enumerate/mjoin.h"
#include "graph/graph.h"
#include "query/pattern_query.h"

namespace rigpm {

/// Options for the worst-case-optimal-join baseline.
struct WcojOptions {
  /// Order query nodes purely topologically (RI) instead of by inverted-list
  /// cardinality (the GF-style default).
  bool use_ri_order = false;
  double timeout_ms = 0.0;
  uint64_t limit = std::numeric_limits<uint64_t>::max();
};

struct WcojResult {
  EvalStatus status = EvalStatus::kOk;
  uint64_t num_occurrences = 0;
  uint64_t intersections = 0;
  double total_ms = 0.0;
};

/// A Graphflow/EmptyHeaded/RapidMatch-style engine: generic worst-case
/// optimal joins executed *directly on the data graph* (no runtime index
/// graph), matching one query node at a time by intersecting label inverted
/// lists with the adjacency lists of already-matched neighbors.
///
/// Like those systems it natively supports only child (edge-to-edge) edges.
/// Descendant edges require `MaterializeClosure()` first — the per-node
/// transitive-closure adjacency the paper had to feed GraphflowDB
/// (Section 7.5, Fig. 18) — whose cost is exactly what that experiment
/// charges the system with.
class WcojEngine {
 public:
  explicit WcojEngine(const Graph& g) : graph_(g) {}

  /// Materializes closure adjacency bitmaps for every node. Fails with
  /// kOutOfMemory when the estimated footprint would exceed `max_bytes`.
  EvalStatus MaterializeClosure(size_t max_bytes, double* build_ms);

  bool HasClosure() const { return !closure_fwd_.empty(); }

  WcojResult Evaluate(const PatternQuery& q, const WcojOptions& opts = {},
                      const OccurrenceSink& sink = nullptr) const;

 private:
  const Graph& graph_;
  std::vector<Bitmap> closure_fwd_;  // reachable-from sets (>= 1 edge)
  std::vector<Bitmap> closure_bwd_;  // reaching sets
};

}  // namespace rigpm

#endif  // RIGPM_BASELINE_WCOJ_ENGINE_H_
