#include "baseline/wcoj_engine.h"

#include <algorithm>
#include <chrono>

#include "reach/transitive_closure.h"

namespace rigpm {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Candidate-size-greedy connected order (the cardinality-driven ordering
// WCO-join systems derive from their catalogs).
std::vector<QueryNodeId> GreedyOrder(const Graph& g, const PatternQuery& q) {
  const uint32_t n = q.NumNodes();
  auto card = [&](QueryNodeId v) -> uint64_t {
    LabelId l = q.Label(v);
    return l < g.NumLabels() ? g.LabelCount(l) : 0;
  };
  std::vector<uint8_t> chosen(n, 0);
  std::vector<QueryNodeId> order;
  QueryNodeId best = 0;
  for (QueryNodeId v = 1; v < n; ++v) {
    if (card(v) < card(best)) best = v;
  }
  order.push_back(best);
  chosen[best] = 1;
  while (order.size() < n) {
    QueryNodeId next = kInvalidNode;
    for (QueryNodeId v = 0; v < n; ++v) {
      if (chosen[v]) continue;
      bool adjacent = false;
      for (QueryNodeId u : order) {
        if (q.HasEdgeBetween(u, v) || q.HasEdgeBetween(v, u)) {
          adjacent = true;
          break;
        }
      }
      if (!adjacent) continue;
      if (next == kInvalidNode || card(v) < card(next)) next = v;
    }
    if (next == kInvalidNode) {
      for (QueryNodeId v = 0; v < n; ++v) {
        if (!chosen[v]) {
          next = v;
          break;
        }
      }
    }
    order.push_back(next);
    chosen[next] = 1;
  }
  return order;
}

std::vector<QueryNodeId> RiStyleOrder(const PatternQuery& q) {
  const uint32_t n = q.NumNodes();
  std::vector<uint8_t> chosen(n, 0);
  std::vector<QueryNodeId> order;
  QueryNodeId best = 0;
  for (QueryNodeId v = 1; v < n; ++v) {
    if (q.Degree(v) > q.Degree(best)) best = v;
  }
  order.push_back(best);
  chosen[best] = 1;
  while (order.size() < n) {
    QueryNodeId next = kInvalidNode;
    int best_back = -1;
    for (QueryNodeId v = 0; v < n; ++v) {
      if (chosen[v]) continue;
      int back = 0;
      for (QueryNodeId u : order) {
        if (q.HasEdgeBetween(u, v) || q.HasEdgeBetween(v, u)) ++back;
      }
      if (back > best_back ||
          (back == best_back && next != kInvalidNode &&
           q.Degree(v) > q.Degree(next))) {
        best_back = back;
        next = v;
      }
    }
    order.push_back(next);
    chosen[next] = 1;
  }
  return order;
}

}  // namespace

EvalStatus WcojEngine::MaterializeClosure(size_t max_bytes, double* build_ms) {
  auto t0 = Clock::now();
  TransitiveClosure tc(graph_);
  const uint32_t n = graph_.NumNodes();
  closure_fwd_.assign(n, Bitmap());
  closure_bwd_.assign(n, Bitmap());
  size_t bytes = 0;
  for (NodeId u = 0; u < n; ++u) {
    Bitmap reach = tc.ReachableNodeSet(u, graph_);
    bytes += reach.MemoryBytes();
    if (bytes > max_bytes) {
      closure_fwd_.clear();
      closure_bwd_.clear();
      if (build_ms != nullptr) *build_ms = MsSince(t0);
      return EvalStatus::kOutOfMemory;
    }
    reach.ForEach([&](NodeId v) { closure_bwd_[v].Add(u); });
    closure_fwd_[u] = std::move(reach);
  }
  if (build_ms != nullptr) *build_ms = MsSince(t0);
  return EvalStatus::kOk;
}

WcojResult WcojEngine::Evaluate(const PatternQuery& q, const WcojOptions& opts,
                                const OccurrenceSink& sink) const {
  WcojResult result;
  auto start = Clock::now();
  if (q.NumDescendantEdges() > 0 && !HasClosure()) {
    result.status = EvalStatus::kUnsupported;
    return result;
  }
  for (const QueryEdge& e : q.Edges()) {
    if (e.kind == EdgeKind::kDescendant && e.max_hops > 0) {
      result.status = EvalStatus::kUnsupported;  // closure ignores bounds
      return result;
    }
  }

  std::vector<QueryNodeId> order =
      opts.use_ri_order ? RiStyleOrder(q) : GreedyOrder(graph_, q);
  std::vector<uint32_t> pos(q.NumNodes());
  for (uint32_t i = 0; i < order.size(); ++i) pos[order[i]] = i;

  // Constraints toward earlier positions, as in MJoin but resolved against
  // raw data adjacency (or the materialized closure).
  struct Constraint {
    QueryEdgeId edge;
    uint32_t earlier_pos;
    bool earlier_is_tail;
  };
  std::vector<std::vector<Constraint>> constraints(q.NumNodes());
  for (QueryEdgeId e = 0; e < q.NumEdges(); ++e) {
    const QueryEdge& edge = q.Edge(e);
    uint32_t pf = pos[edge.from];
    uint32_t pt = pos[edge.to];
    if (pf < pt) {
      constraints[pt].push_back({e, pf, true});
    } else {
      constraints[pf].push_back({e, pt, false});
    }
  }

  std::vector<NodeId> tuple(q.NumNodes(), kInvalidNode);
  uint64_t counter = 0;
  bool timeout_hit = false;
  auto timed_out = [&]() {
    return opts.timeout_ms > 0.0 && MsSince(start) > opts.timeout_ms;
  };

  // Iterative-recursive backtracking.
  std::function<bool(uint32_t)> descend = [&](uint32_t i) -> bool {
    if (i == order.size()) {
      ++result.num_occurrences;
      if (sink && !sink(tuple)) return false;
      return result.num_occurrences < opts.limit;
    }
    if (((++counter) & 0xFFF) == 0 && timed_out()) {
      timeout_hit = true;
      return false;
    }
    QueryNodeId qi = order[i];
    LabelId label = q.Label(qi);
    if (label >= graph_.NumLabels()) return true;
    std::vector<const Bitmap*> inputs;
    inputs.push_back(&graph_.LabelBitmap(label));
    for (const Constraint& c : constraints[i]) {
      const QueryEdge& edge = q.Edge(c.edge);
      NodeId matched = tuple[order[c.earlier_pos]];
      const Bitmap* adj;
      if (edge.kind == EdgeKind::kChild) {
        adj = c.earlier_is_tail ? &graph_.OutBitmap(matched)
                                : &graph_.InBitmap(matched);
      } else {
        adj = c.earlier_is_tail ? &closure_fwd_[matched]
                                : &closure_bwd_[matched];
      }
      inputs.push_back(adj);
    }
    ++result.intersections;
    Bitmap cosi = Bitmap::AndMany(inputs);
    bool keep_going = true;
    cosi.ForEach([&](NodeId v) {
      if (!keep_going) return;
      tuple[qi] = v;
      keep_going = descend(i + 1);
    });
    tuple[qi] = kInvalidNode;
    return keep_going;
  };
  descend(0);
  if (timeout_hit) result.status = EvalStatus::kTimeout;
  result.total_ms = MsSince(start);
  return result;
}

}  // namespace rigpm
