#include "baseline/edge_relations.h"

namespace rigpm {

EvalStatus BuildEdgeRelations(const MatchContext& ctx, const PatternQuery& q,
                              const CandidateSets& candidates,
                              uint64_t max_total_pairs,
                              std::vector<EdgeRelation>* out) {
  const Graph& g = ctx.graph();
  out->clear();
  out->reserve(q.NumEdges());
  uint64_t total = 0;
  for (QueryEdgeId e = 0; e < q.NumEdges(); ++e) {
    const QueryEdge& edge = q.Edge(e);
    EdgeRelation rel;
    rel.edge = e;
    const Bitmap& src = candidates[edge.from];
    const Bitmap& dst = candidates[edge.to];
    bool overflow = false;
    if (edge.kind == EdgeKind::kChild) {
      src.ForEach([&](NodeId u) {
        if (overflow) return;
        Bitmap partners = Bitmap::And(g.OutBitmap(u), dst);
        partners.ForEach([&](NodeId v) { rel.pairs.emplace_back(u, v); });
        if (total + rel.pairs.size() > max_total_pairs) overflow = true;
      });
    } else {
      std::vector<NodeId> dst_nodes = dst.ToVector();
      src.ForEach([&](NodeId u) {
        if (overflow) return;
        for (NodeId v : dst_nodes) {
          if (ctx.EdgePairMatch(edge, u, v)) rel.pairs.emplace_back(u, v);
        }
        if (total + rel.pairs.size() > max_total_pairs) overflow = true;
      });
    }
    if (overflow) return EvalStatus::kOutOfMemory;
    total += rel.pairs.size();
    out->push_back(std::move(rel));
  }
  return EvalStatus::kOk;
}

}  // namespace rigpm
