#ifndef RIGPM_BASELINE_ISO_ENGINE_H_
#define RIGPM_BASELINE_ISO_ENGINE_H_

#include <cstdint>
#include <limits>

#include "baseline/eval_status.h"
#include "enumerate/mjoin.h"
#include "graph/graph.h"
#include "query/pattern_query.h"

namespace rigpm {

/// Options for the subgraph-isomorphism baseline.
struct IsoOptions {
  /// Neighborhood-label-frequency filter (a standard candidate filter in
  /// the in-memory isomorphism algorithms surveyed by [53]).
  bool use_nlf_filter = true;
  double timeout_ms = 0.0;
  uint64_t limit = std::numeric_limits<uint64_t>::max();
};

struct IsoResult {
  EvalStatus status = EvalStatus::kOk;
  uint64_t num_embeddings = 0;
  double total_ms = 0.0;
};

/// ISO: backtracking subgraph isomorphism for child-edge-only queries
/// (Section 7.2, "Isomorphism vs homomorphism"). Enforces the injective
/// node mapping that distinguishes isomorphisms from the homomorphisms the
/// other engines compute; candidate sets are pruned with label, degree and
/// (optionally) neighborhood-label-frequency filters. Returns kUnsupported
/// for queries containing descendant edges.
IsoResult IsoEvaluate(const Graph& g, const PatternQuery& q,
                      const IsoOptions& opts = {},
                      const OccurrenceSink& sink = nullptr);

}  // namespace rigpm

#endif  // RIGPM_BASELINE_ISO_ENGINE_H_
