#include "baseline/tm_engine.h"

#include <chrono>
#include <vector>

#include "order/search_order.h"
#include "rig/rig_builder.h"
#include "sim/fbsim_dag.h"
#include "sim/prefilter.h"

namespace rigpm {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// BFS spanning tree over the undirected view; returns original edge indices.
void SpanningTree(const PatternQuery& q, std::vector<QueryEdgeId>* tree,
                  std::vector<QueryEdgeId>* non_tree) {
  const uint32_t n = q.NumNodes();
  std::vector<uint8_t> seen(n, 0);
  std::vector<uint8_t> is_tree(q.NumEdges(), 0);
  std::vector<QueryNodeId> frontier = {0};
  seen[0] = 1;
  for (size_t head = 0; head < frontier.size(); ++head) {
    QueryNodeId v = frontier[head];
    for (QueryEdgeId e : q.OutEdges(v)) {
      QueryNodeId w = q.Edge(e).to;
      if (!seen[w]) {
        seen[w] = 1;
        is_tree[e] = 1;
        frontier.push_back(w);
      }
    }
    for (QueryEdgeId e : q.InEdges(v)) {
      QueryNodeId w = q.Edge(e).from;
      if (!seen[w]) {
        seen[w] = 1;
        is_tree[e] = 1;
        frontier.push_back(w);
      }
    }
  }
  for (QueryEdgeId e = 0; e < q.NumEdges(); ++e) {
    (is_tree[e] ? *tree : *non_tree).push_back(e);
  }
}

}  // namespace

TmResult TmEvaluate(const MatchContext& ctx, const PatternQuery& q,
                    const TmOptions& opts, const OccurrenceSink& sink) {
  TmResult result;
  auto start = Clock::now();
  auto timed_out = [&]() {
    return opts.timeout_ms > 0.0 && MsSince(start) > opts.timeout_ms;
  };

  // --- Spanning tree + residual edges of Q.
  std::vector<QueryEdgeId> tree_edges, non_tree_edges;
  SpanningTree(q, &tree_edges, &non_tree_edges);
  std::vector<QueryEdge> tree_query_edges;
  tree_query_edges.reserve(tree_edges.size());
  for (QueryEdgeId e : tree_edges) tree_query_edges.push_back(q.Edge(e));
  PatternQuery tree_q = PatternQuery::FromParts(q.Labels(), tree_query_edges);

  // --- Tree evaluation after [59]: candidates are filtered with a tree
  // double simulation (one bottom-up + one top-down pass suffices on trees),
  // then the answer graph (a tree-restricted RIG) is built and enumerated.
  auto t0 = Clock::now();
  CandidateSets seed = opts.use_prefilter
                           ? PreFilter(ctx, q, SimOptions{})
                           : InitialMatchSets(ctx.graph(), q);
  RigBuildOptions rig_opts;
  rig_opts.sim_algorithm = SimAlgorithm::kDagMap;
  rig_opts.sim = SimOptions{};  // exact fixpoint; trees converge in one pass
  Rig answer_graph = BuildRig(ctx, tree_q, std::move(seed), rig_opts);
  result.aux_graph_nodes = answer_graph.TotalNodes();
  result.aux_graph_edges = answer_graph.TotalEdges();
  result.build_ms = MsSince(t0);
  if (timed_out()) {
    result.status = EvalStatus::kTimeout;
    return result;
  }

  // --- Enumerate tree solutions; filter each against the non-tree edges.
  auto t1 = Clock::now();
  std::vector<QueryNodeId> order =
      ComputeSearchOrder(tree_q, answer_graph, OrderStrategy::kJO);
  bool timeout_hit = false;
  uint64_t check_counter = 0;
  MJoinOptions mopts;  // no limit on *tree* tuples; the answer cap applies
  MJoin(
      tree_q, answer_graph, order,
      [&](const Occurrence& t) {
        ++result.tree_solutions;
        if (((++check_counter) & 0x3FF) == 0 && timed_out()) {
          timeout_hit = true;
          return false;
        }
        for (QueryEdgeId e : non_tree_edges) {
          const QueryEdge& edge = q.Edge(e);
          if (!ctx.EdgePairMatch(edge, t[edge.from], t[edge.to])) return true;
        }
        ++result.num_occurrences;
        if (sink && !sink(t)) return false;
        return result.num_occurrences < opts.limit;
      },
      mopts);
  result.enumerate_ms = MsSince(t1);
  if (timeout_hit) result.status = EvalStatus::kTimeout;
  return result;
}

}  // namespace rigpm
