#include "baseline/jm_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "sim/prefilter.h"

namespace rigpm {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

uint64_t PairKey(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

// Greedy left-deep plan: start from the smallest relation, repeatedly append
// the smallest relation sharing a query node with the covered set.
std::vector<size_t> GreedyPlan(const PatternQuery& q,
                               const std::vector<EdgeRelation>& rels) {
  const size_t m = rels.size();
  std::vector<uint8_t> used(m, 0);
  std::vector<uint8_t> covered(q.NumNodes(), 0);
  std::vector<size_t> plan;
  plan.reserve(m);

  size_t first = 0;
  for (size_t i = 1; i < m; ++i) {
    if (rels[i].pairs.size() < rels[first].pairs.size()) first = i;
  }
  plan.push_back(first);
  used[first] = 1;
  covered[q.Edge(rels[first].edge).from] = 1;
  covered[q.Edge(rels[first].edge).to] = 1;

  while (plan.size() < m) {
    size_t best = m;
    for (size_t i = 0; i < m; ++i) {
      if (used[i]) continue;
      const QueryEdge& e = q.Edge(rels[i].edge);
      if (!covered[e.from] && !covered[e.to]) continue;
      if (best == m || rels[i].pairs.size() < rels[best].pairs.size()) {
        best = i;
      }
    }
    if (best == m) {  // disconnected remainder: take the smallest
      for (size_t i = 0; i < m; ++i) {
        if (!used[i] && (best == m ||
                         rels[i].pairs.size() < rels[best].pairs.size())) {
          best = i;
        }
      }
    }
    plan.push_back(best);
    used[best] = 1;
    covered[q.Edge(rels[best].edge).from] = 1;
    covered[q.Edge(rels[best].edge).to] = 1;
  }
  return plan;
}

// Exact DP over edge subsets: minimizes the summed estimated sizes of all
// intermediate results of a left-deep plan (the classical Selinger-style
// optimization JM runs, Section 7.2).
std::vector<size_t> DpPlan(const PatternQuery& q,
                           const std::vector<EdgeRelation>& rels,
                           const CandidateSets& candidates,
                           uint64_t* plans_considered) {
  const size_t m = rels.size();
  std::vector<double> log_card(q.NumNodes());
  for (QueryNodeId v = 0; v < q.NumNodes(); ++v) {
    log_card[v] =
        std::log(std::max<uint64_t>(1, candidates[v].Cardinality()));
  }
  std::vector<double> log_sel(m);
  for (size_t i = 0; i < m; ++i) {
    const QueryEdge& e = q.Edge(rels[i].edge);
    double denom = std::max<double>(
        1.0, std::exp(log_card[e.from]) * std::exp(log_card[e.to]));
    log_sel[i] = std::log(
        std::max<double>(1.0, static_cast<double>(rels[i].pairs.size())) /
        denom);
  }
  auto log_size = [&](uint32_t mask) {
    // Covered nodes and per-edge selectivities, independence assumption.
    std::vector<uint8_t> covered(q.NumNodes(), 0);
    double s = 0.0;
    for (size_t i = 0; i < m; ++i) {
      if (!(mask & (1u << i))) continue;
      const QueryEdge& e = q.Edge(rels[i].edge);
      covered[e.from] = covered[e.to] = 1;
      s += log_sel[i];
    }
    for (QueryNodeId v = 0; v < q.NumNodes(); ++v) {
      if (covered[v]) s += log_card[v];
    }
    return s;
  };
  auto shares_node = [&](uint32_t mask, size_t i) {
    const QueryEdge& e = q.Edge(rels[i].edge);
    for (size_t j = 0; j < m; ++j) {
      if (!(mask & (1u << j))) continue;
      const QueryEdge& f = q.Edge(rels[j].edge);
      if (e.from == f.from || e.from == f.to || e.to == f.from ||
          e.to == f.to) {
        return true;
      }
    }
    return false;
  };

  const uint32_t full = (1u << m) - 1;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> cost(full + 1, kInf);
  std::vector<int8_t> last(full + 1, -1);
  uint64_t expanded = 0;
  for (size_t i = 0; i < m; ++i) {
    uint32_t mask = 1u << i;
    cost[mask] = std::exp(log_size(mask));
    last[mask] = static_cast<int8_t>(i);
  }
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if (cost[mask] == kInf) continue;
    for (size_t i = 0; i < m; ++i) {
      if (mask & (1u << i)) continue;
      if (!shares_node(mask, i)) continue;
      uint32_t next = mask | (1u << i);
      ++expanded;
      double c = cost[mask] + std::exp(log_size(next));
      if (c < cost[next]) {
        cost[next] = c;
        last[next] = static_cast<int8_t>(i);
      }
    }
  }
  if (plans_considered != nullptr) *plans_considered = expanded;
  if (last[full] < 0) return GreedyPlan(q, rels);  // disconnected safety net

  std::vector<size_t> plan(m);
  uint32_t mask = full;
  for (size_t i = m; i-- > 0;) {
    size_t rel = static_cast<size_t>(last[mask]);
    plan[i] = rel;
    mask &= ~(1u << rel);
  }
  return plan;
}

}  // namespace

JmResult JmEvaluate(const MatchContext& ctx, const PatternQuery& q,
                    const JmOptions& opts, const OccurrenceSink& sink) {
  JmResult result;
  auto start = Clock::now();
  auto timed_out = [&]() {
    return opts.timeout_ms > 0.0 && MsSince(start) > opts.timeout_ms;
  };

  // --- Candidates + edge relations.
  auto t0 = Clock::now();
  CandidateSets candidates = opts.use_prefilter
                                 ? PreFilter(ctx, q, SimOptions{})
                                 : InitialMatchSets(ctx.graph(), q);
  std::vector<EdgeRelation> rels;
  result.status = BuildEdgeRelations(ctx, q, candidates,
                                     opts.max_intermediate_tuples, &rels);
  result.relations_ms = MsSince(t0);
  if (result.status != EvalStatus::kOk) return result;
  if (timed_out()) {
    result.status = EvalStatus::kTimeout;
    return result;
  }

  // --- Left-deep plan.
  auto t1 = Clock::now();
  std::vector<size_t> plan =
      (rels.size() <= opts.dp_max_edges)
          ? DpPlan(q, rels, candidates, &result.plans_considered)
          : GreedyPlan(q, rels);
  result.plan_ms = MsSince(t1);

  // --- Execute binary joins, materializing every intermediate result.
  auto t2 = Clock::now();
  const uint32_t n = q.NumNodes();
  std::vector<std::vector<NodeId>> intermediate;
  std::vector<uint8_t> covered(n, 0);

  for (size_t step = 0; step < plan.size(); ++step) {
    const EdgeRelation& rel = rels[plan[step]];
    const QueryEdge& e = q.Edge(rel.edge);
    if (timed_out()) {
      result.status = EvalStatus::kTimeout;
      result.join_ms = MsSince(t2);
      return result;
    }

    if (step == 0) {
      intermediate.reserve(rel.pairs.size());
      for (const auto& [u, v] : rel.pairs) {
        if (e.from == e.to && u != v) continue;
        std::vector<NodeId> t(n, kInvalidNode);
        t[e.from] = u;
        t[e.to] = v;
        intermediate.push_back(std::move(t));
      }
    } else {
      std::vector<std::vector<NodeId>> next;
      bool from_cov = covered[e.from] != 0;
      bool to_cov = covered[e.to] != 0;
      if (from_cov && to_cov) {
        std::unordered_set<uint64_t> pair_set;
        pair_set.reserve(rel.pairs.size() * 2);
        for (const auto& [u, v] : rel.pairs) pair_set.insert(PairKey(u, v));
        for (auto& t : intermediate) {
          if (pair_set.count(PairKey(t[e.from], t[e.to])) > 0) {
            next.push_back(std::move(t));
          }
        }
      } else if (from_cov || to_cov) {
        QueryNodeId probe = from_cov ? e.from : e.to;
        QueryNodeId extend = from_cov ? e.to : e.from;
        std::unordered_map<NodeId, std::vector<NodeId>> index;
        for (const auto& [u, v] : rel.pairs) {
          if (from_cov) {
            index[u].push_back(v);
          } else {
            index[v].push_back(u);
          }
        }
        for (const auto& t : intermediate) {
          auto it = index.find(t[probe]);
          if (it == index.end()) continue;
          for (NodeId w : it->second) {
            std::vector<NodeId> nt = t;
            nt[extend] = w;
            next.push_back(std::move(nt));
            if (next.size() > opts.max_intermediate_tuples) {
              result.status = EvalStatus::kOutOfMemory;
              result.join_ms = MsSince(t2);
              return result;
            }
          }
        }
      } else {
        // Cartesian product (disconnected plan prefix; rare).
        for (const auto& t : intermediate) {
          for (const auto& [u, v] : rel.pairs) {
            std::vector<NodeId> nt = t;
            nt[e.from] = u;
            nt[e.to] = v;
            next.push_back(std::move(nt));
            if (next.size() > opts.max_intermediate_tuples) {
              result.status = EvalStatus::kOutOfMemory;
              result.join_ms = MsSince(t2);
              return result;
            }
          }
        }
      }
      intermediate = std::move(next);
    }
    covered[e.from] = covered[e.to] = 1;
    result.max_intermediate_size =
        std::max<uint64_t>(result.max_intermediate_size, intermediate.size());
    if (intermediate.size() > opts.max_intermediate_tuples) {
      result.status = EvalStatus::kOutOfMemory;
      result.join_ms = MsSince(t2);
      return result;
    }
  }

  // --- Emit.
  for (const auto& t : intermediate) {
    if (result.num_occurrences >= opts.limit) break;
    ++result.num_occurrences;
    if (sink && !sink(t)) break;
  }
  result.join_ms = MsSince(t2);
  return result;
}

}  // namespace rigpm
