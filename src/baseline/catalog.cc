#include "baseline/catalog.h"

#include <chrono>
#include <unordered_map>

namespace rigpm {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t TripleKey(LabelId a, LabelId b, LabelId c) {
  return (static_cast<uint64_t>(a) << 42) | (static_cast<uint64_t>(b) << 21) |
         c;
}

}  // namespace

CatalogResult BuildCatalog(const Graph& g, uint64_t max_entries) {
  CatalogResult result;
  auto t0 = Clock::now();

  std::unordered_map<uint64_t, uint64_t> stats;
  auto bump = [&](uint64_t key) {
    ++stats[key];
    return stats.size() <= max_entries;
  };

  // Labeled edge statistics.
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      if (!bump(TripleKey(g.Label(u), g.Label(v), 0x1FFFFF))) {
        result.status = EvalStatus::kOutOfMemory;
      }
    }
  }

  // Labeled wedge statistics in the three orientations WCO optimizers use:
  // out-out (u<-w->v), in-out (u->w->v), in-in (u->w<-v).
  for (NodeId w = 0; w < g.NumNodes() && result.status == EvalStatus::kOk;
       ++w) {
    auto outs = g.OutNeighbors(w);
    auto ins = g.InNeighbors(w);
    for (NodeId u : outs) {
      for (NodeId v : outs) {
        if (!bump(TripleKey(g.Label(u), g.Label(w), g.Label(v)))) {
          result.status = EvalStatus::kOutOfMemory;
          break;
        }
      }
      if (result.status != EvalStatus::kOk) break;
    }
    for (NodeId u : ins) {
      for (NodeId v : outs) {
        if (!bump(TripleKey(g.Label(u), g.Label(w), g.Label(v)) ^
                  0x8000000000000000ull)) {
          result.status = EvalStatus::kOutOfMemory;
          break;
        }
      }
      if (result.status != EvalStatus::kOk) break;
    }
    for (NodeId u : ins) {
      for (NodeId v : ins) {
        if (!bump(TripleKey(g.Label(u), g.Label(w), g.Label(v)) ^
                  0x4000000000000000ull)) {
          result.status = EvalStatus::kOutOfMemory;
          break;
        }
      }
      if (result.status != EvalStatus::kOk) break;
    }
  }

  result.entries = stats.size();
  result.build_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0)
                        .count();
  return result;
}

}  // namespace rigpm
