#ifndef RIGPM_BASELINE_JM_ENGINE_H_
#define RIGPM_BASELINE_JM_ENGINE_H_

#include <cstdint>
#include <limits>

#include "baseline/edge_relations.h"
#include "baseline/eval_status.h"
#include "enumerate/mjoin.h"
#include "sim/match_sets.h"

namespace rigpm {

/// Options for the join-based baseline.
struct JmOptions {
  /// Apply node pre-filtering [11, 63] before materializing edge relations
  /// (the experiments always do for JM).
  bool use_prefilter = true;

  /// Memory budget: total tuples allowed across the edge relations plus the
  /// largest intermediate result. Exceeding it aborts with kOutOfMemory,
  /// reproducing JM's dominant failure mode (Section 7.2).
  uint64_t max_intermediate_tuples = 20'000'000;

  /// Wall-clock budget; 0 disables (the experiments use 10 minutes).
  double timeout_ms = 0.0;

  uint64_t limit = std::numeric_limits<uint64_t>::max();

  /// Queries with at most this many edges get the exact dynamic-programming
  /// left-deep plan; larger ones use a greedy plan (the paper observes the
  /// DP enumerating millions of plans beyond 10 nodes).
  uint32_t dp_max_edges = 16;
};

struct JmResult {
  EvalStatus status = EvalStatus::kOk;
  uint64_t num_occurrences = 0;
  uint64_t max_intermediate_size = 0;  // peak tuple count
  uint64_t plans_considered = 0;       // DP states expanded
  double relations_ms = 0.0;
  double plan_ms = 0.0;
  double join_ms = 0.0;
  double TotalMs() const { return relations_ms + plan_ms + join_ms; }
};

/// JM: the join-based approach (Section 7.1). Materializes ms(e) for every
/// query edge, picks a left-deep binary-join plan by dynamic programming,
/// then executes Selinger-style hash joins, materializing every intermediate
/// result (the behaviour whose cost GM avoids).
JmResult JmEvaluate(const MatchContext& ctx, const PatternQuery& q,
                    const JmOptions& opts = {},
                    const OccurrenceSink& sink = nullptr);

}  // namespace rigpm

#endif  // RIGPM_BASELINE_JM_ENGINE_H_
