#ifndef RIGPM_BASELINE_CATALOG_H_
#define RIGPM_BASELINE_CATALOG_H_

#include <cstdint>

#include "baseline/eval_status.h"
#include "graph/graph.h"

namespace rigpm {

/// Result of simulating the GraphflowDB catalog precomputation the paper
/// measures in Fig. 16(a) / Fig. 18(a).
struct CatalogResult {
  EvalStatus status = EvalStatus::kOk;
  double build_ms = 0.0;
  uint64_t entries = 0;  // cardinality entries materialized
};

/// Builds subgraph-cardinality statistics the way WCO-join optimizers do:
/// per-label node counts, labeled edge counts, and labeled two-edge (wedge)
/// counts in all orientations. The wedge pass enumerates
/// Σ_v deg_in(v)·deg_out(v) (+ deg_out², deg_in²) combinations, which blows
/// up on dense or label-rich graphs — reproducing the catalog costs and
/// out-of-memory failures the paper reports for GF.
///
/// `max_entries` is the memory budget in distinct statistics entries.
CatalogResult BuildCatalog(const Graph& g, uint64_t max_entries);

}  // namespace rigpm

#endif  // RIGPM_BASELINE_CATALOG_H_
