#ifndef RIGPM_BASELINE_TM_ENGINE_H_
#define RIGPM_BASELINE_TM_ENGINE_H_

#include <cstdint>
#include <limits>

#include "baseline/eval_status.h"
#include "enumerate/mjoin.h"
#include "sim/match_sets.h"

namespace rigpm {

/// Options for the tree-based baseline.
struct TmOptions {
  bool use_prefilter = true;
  double timeout_ms = 0.0;  // 0 disables
  uint64_t limit = std::numeric_limits<uint64_t>::max();
};

struct TmResult {
  EvalStatus status = EvalStatus::kOk;
  uint64_t num_occurrences = 0;
  uint64_t tree_solutions = 0;     // tuples produced for the spanning tree
  uint64_t aux_graph_nodes = 0;    // the "answer graph" of [59] (Fig. 13)
  uint64_t aux_graph_edges = 0;
  double build_ms = 0.0;           // filtering + answer-graph construction
  double enumerate_ms = 0.0;
  double TotalMs() const { return build_ms + enumerate_ms; }
};

/// TM: the tree-based approach (Section 7.1). Extracts a spanning tree of
/// the query, evaluates the tree pattern with the simulation-based algorithm
/// of [59] (tree double simulation + answer-graph enumeration), and filters
/// every tree solution against the non-tree edges of the original query.
///
/// Its weakness — shared with all TM algorithms — is that the number of
/// tree solutions can dwarf the final answer, and each one pays a reachability
/// check per missing edge; that is the behaviour the experiments measure.
TmResult TmEvaluate(const MatchContext& ctx, const PatternQuery& q,
                    const TmOptions& opts = {},
                    const OccurrenceSink& sink = nullptr);

}  // namespace rigpm

#endif  // RIGPM_BASELINE_TM_ENGINE_H_
