#ifndef RIGPM_BASELINE_EDGE_RELATIONS_H_
#define RIGPM_BASELINE_EDGE_RELATIONS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "baseline/eval_status.h"
#include "sim/match_sets.h"

namespace rigpm {

/// Materialized match set ms(e) of one query edge: the binary relation the
/// join-based approach (JM) evaluates over (Section 1: "JM first computes
/// the occurrences for each edge of the input query").
struct EdgeRelation {
  QueryEdgeId edge = 0;
  std::vector<std::pair<NodeId, NodeId>> pairs;
};

/// Materializes every query edge's relation from the given candidate sets.
/// Stops and reports kOutOfMemory once the total pair count exceeds
/// `max_total_pairs` (the experiments' memory budget — descendant edges can
/// produce quadratically many pairs, which is exactly JM's failure mode).
EvalStatus BuildEdgeRelations(const MatchContext& ctx, const PatternQuery& q,
                              const CandidateSets& candidates,
                              uint64_t max_total_pairs,
                              std::vector<EdgeRelation>* out);

}  // namespace rigpm

#endif  // RIGPM_BASELINE_EDGE_RELATIONS_H_
