#include "baseline/iso_engine.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <vector>

namespace rigpm {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Per-label neighbor counts of a node, for the NLF filter.
std::vector<uint32_t> LabelHistogram(const Graph& g,
                                     std::span<const NodeId> neighbors) {
  std::vector<uint32_t> hist(g.NumLabels(), 0);
  for (NodeId w : neighbors) ++hist[g.Label(w)];
  return hist;
}

}  // namespace

IsoResult IsoEvaluate(const Graph& g, const PatternQuery& q,
                      const IsoOptions& opts, const OccurrenceSink& sink) {
  IsoResult result;
  auto start = Clock::now();
  if (q.NumDescendantEdges() > 0) {
    result.status = EvalStatus::kUnsupported;
    return result;
  }

  // --- Candidate sets: label + degree (+ NLF) filters.
  const uint32_t n = q.NumNodes();
  std::vector<Bitmap> candidates(n);
  // Query-side label histograms for NLF.
  std::vector<std::vector<uint32_t>> q_out_hist(n), q_in_hist(n);
  if (opts.use_nlf_filter) {
    for (QueryNodeId v = 0; v < n; ++v) {
      q_out_hist[v].assign(g.NumLabels(), 0);
      q_in_hist[v].assign(g.NumLabels(), 0);
      for (QueryEdgeId e : q.OutEdges(v)) {
        LabelId l = q.Label(q.Edge(e).to);
        if (l < g.NumLabels()) ++q_out_hist[v][l];
      }
      for (QueryEdgeId e : q.InEdges(v)) {
        LabelId l = q.Label(q.Edge(e).from);
        if (l < g.NumLabels()) ++q_in_hist[v][l];
      }
    }
  }
  for (QueryNodeId v = 0; v < n; ++v) {
    LabelId l = q.Label(v);
    if (l >= g.NumLabels()) {
      result.total_ms = MsSince(start);
      return result;  // label absent: empty answer
    }
    std::vector<NodeId> kept;
    for (NodeId u : g.LabelNodes(l)) {
      if (g.OutDegree(u) < q.OutDegree(v) || g.InDegree(u) < q.InDegree(v)) {
        continue;
      }
      if (opts.use_nlf_filter) {
        auto out_hist = LabelHistogram(g, g.OutNeighbors(u));
        auto in_hist = LabelHistogram(g, g.InNeighbors(u));
        bool ok = true;
        for (LabelId a = 0; a < g.NumLabels() && ok; ++a) {
          ok = out_hist[a] >= q_out_hist[v][a] && in_hist[a] >= q_in_hist[v][a];
        }
        if (!ok) continue;
      }
      kept.push_back(u);
    }
    candidates[v] = Bitmap::FromSorted(kept);
    if (candidates[v].Empty()) {
      result.total_ms = MsSince(start);
      return result;
    }
  }

  // --- Connected greedy order by candidate cardinality.
  std::vector<uint8_t> chosen(n, 0);
  std::vector<QueryNodeId> order;
  QueryNodeId best = 0;
  for (QueryNodeId v = 1; v < n; ++v) {
    if (candidates[v].Cardinality() < candidates[best].Cardinality()) best = v;
  }
  order.push_back(best);
  chosen[best] = 1;
  while (order.size() < n) {
    QueryNodeId next = kInvalidNode;
    for (QueryNodeId v = 0; v < n; ++v) {
      if (chosen[v]) continue;
      bool adjacent = false;
      for (QueryNodeId u : order) {
        if (q.HasEdgeBetween(u, v) || q.HasEdgeBetween(v, u)) {
          adjacent = true;
          break;
        }
      }
      if (!adjacent) continue;
      if (next == kInvalidNode ||
          candidates[v].Cardinality() < candidates[next].Cardinality()) {
        next = v;
      }
    }
    if (next == kInvalidNode) {
      for (QueryNodeId v = 0; v < n; ++v) {
        if (!chosen[v]) {
          next = v;
          break;
        }
      }
    }
    order.push_back(next);
    chosen[next] = 1;
  }

  // --- Backtracking with injectivity.
  std::vector<NodeId> tuple(n, kInvalidNode);
  std::vector<NodeId> used;  // matched data nodes, small linear scan
  uint64_t counter = 0;
  bool timeout_hit = false;
  auto timed_out = [&]() {
    return opts.timeout_ms > 0.0 && MsSince(start) > opts.timeout_ms;
  };

  std::function<bool(uint32_t)> descend = [&](uint32_t i) -> bool {
    if (i == n) {
      ++result.num_embeddings;
      if (sink && !sink(tuple)) return false;
      return result.num_embeddings < opts.limit;
    }
    if (((++counter) & 0xFFF) == 0 && timed_out()) {
      timeout_hit = true;
      return false;
    }
    QueryNodeId qi = order[i];
    std::vector<const Bitmap*> inputs = {&candidates[qi]};
    for (QueryEdgeId e : q.OutEdges(qi)) {
      QueryNodeId other = q.Edge(e).to;
      if (tuple[other] != kInvalidNode) {
        inputs.push_back(&g.InBitmap(tuple[other]));
      }
    }
    for (QueryEdgeId e : q.InEdges(qi)) {
      QueryNodeId other = q.Edge(e).from;
      if (tuple[other] != kInvalidNode) {
        inputs.push_back(&g.OutBitmap(tuple[other]));
      }
    }
    Bitmap cosi = Bitmap::AndMany(inputs);
    bool keep_going = true;
    cosi.ForEach([&](NodeId v) {
      if (!keep_going) return;
      // Injectivity: the one-to-one constraint of isomorphic matching.
      if (std::find(used.begin(), used.end(), v) != used.end()) return;
      tuple[qi] = v;
      used.push_back(v);
      keep_going = descend(i + 1);
      used.pop_back();
    });
    tuple[qi] = kInvalidNode;
    return keep_going;
  };
  descend(0);
  if (timeout_hit) result.status = EvalStatus::kTimeout;
  result.total_ms = MsSince(start);
  return result;
}

}  // namespace rigpm
