#ifndef RIGPM_GRAPHDB_GRAPH_DATABASE_H_
#define RIGPM_GRAPHDB_GRAPH_DATABASE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "query/pattern_query.h"
#include "storage/snapshot_io.h"
#include "util/owned_span.h"

namespace rigpm {

/// Subgraph searching over a collection of small data graphs (the problem
/// Section 8 distinguishes from single-large-graph matching): given a query
/// pattern, retrieve every member graph that contains at least one match.
///
/// Follows the standard indexing-filtering-verification paradigm:
///  * index   — per-member feature vectors (label histogram + labeled-edge
///              histogram) built once at insertion;
///  * filter  — a member can be skipped when the query needs a label or a
///              labeled edge the member lacks (sound for homomorphisms:
///              every query node/edge must map somewhere);
///  * verify  — the remaining members are checked with the GM engine
///              (homomorphic semantics, hybrid edges supported) or the ISO
///              engine (isomorphic semantics, child edges only).
class GraphDatabase {
 public:
  struct SearchOptions {
    /// Verify with subgraph isomorphism instead of homomorphism. Requires a
    /// child-edge-only query.
    bool isomorphic = false;

    /// Worker threads for the verification stage: the members surviving the
    /// feature filter are checked concurrently (each worker owns its
    /// engines, so no locks are taken). 1 = sequential (default), 0 =
    /// std::thread::hardware_concurrency(). The result is identical to the
    /// sequential search — hit ids are always returned in ascending order.
    uint32_t num_threads = 1;
  };

  struct SearchStats {
    size_t candidates_after_filter = 0;
    size_t verified = 0;  // members actually evaluated
  };

  GraphDatabase() = default;

  /// Inserts a member graph; returns its id (dense, insertion order).
  size_t Add(Graph g, std::string name = "");

  size_t Size() const { return members_.size(); }
  const Graph& MemberGraph(size_t id) const { return members_[id].graph; }
  const std::string& Name(size_t id) const { return members_[id].name; }

  /// Ids of every member containing at least one match of `q`.
  std::vector<size_t> Search(const PatternQuery& q, const SearchOptions& opts,
                             SearchStats* stats = nullptr) const;
  std::vector<size_t> Search(const PatternQuery& q) const {
    return Search(q, SearchOptions());
  }

  /// True iff the feature filter alone rules the member out (exposed for
  /// tests; a `false` return does not guarantee a match).
  bool PassesFilter(size_t id, const PatternQuery& q) const;

  /// Persists every member — graph, name, and the pre-built feature vectors
  /// — to a binary snapshot (storage/snapshot.h), so a restart skips both
  /// text parsing and feature extraction.
  bool Save(const std::string& path, std::string* error = nullptr) const;

  /// Restores a database written by Save. Returns std::nullopt (and fills
  /// *error) on any malformed input. In mmap mode (the default) member
  /// graphs and feature vectors are borrowed views into the shared file
  /// mapping. A database load produces no single graph to overlay, so a
  /// non-empty options.delta_path is rejected.
  static std::optional<GraphDatabase> Load(const std::string& path,
                                           const LoadOptions& options = {},
                                           std::string* error = nullptr);

 private:
  struct Member {
    Graph graph;
    std::string name;
    // Feature vectors for filtering (owned when built at Add() time,
    // borrowed from the snapshot mapping when loaded zero-copy).
    OwnedOrBorrowedSpan<uint32_t> label_counts;
    OwnedOrBorrowedSpan<uint64_t> edge_labels;  // sorted (from << 32 | to)
  };

  static std::vector<uint64_t> EdgeLabelFeatures(const Graph& g);

  std::vector<Member> members_;
  // Ownership token for borrowed storage (the snapshot mapping); null for
  // databases built with Add().
  std::shared_ptr<const void> storage_;
};

}  // namespace rigpm

#endif  // RIGPM_GRAPHDB_GRAPH_DATABASE_H_
