#include "graphdb/graph_database.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "baseline/iso_engine.h"
#include "engine/gm_engine.h"
#include "storage/snapshot.h"
#include "util/concurrency.h"
#include "util/serde.h"

namespace rigpm {

std::vector<uint64_t> GraphDatabase::EdgeLabelFeatures(const Graph& g) {
  std::vector<uint64_t> features;
  features.reserve(g.NumEdges());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (NodeId w : g.OutNeighbors(v)) {
      features.push_back((static_cast<uint64_t>(g.Label(v)) << 32) |
                         g.Label(w));
    }
  }
  std::sort(features.begin(), features.end());
  features.erase(std::unique(features.begin(), features.end()),
                 features.end());
  return features;
}

size_t GraphDatabase::Add(Graph g, std::string name) {
  Member m;
  std::vector<uint32_t>& label_counts = m.label_counts.Mutable();
  label_counts.assign(g.NumLabels(), 0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) ++label_counts[g.Label(v)];
  m.edge_labels = OwnedOrBorrowedSpan<uint64_t>(EdgeLabelFeatures(g));
  m.graph = std::move(g);
  m.name = std::move(name);
  members_.push_back(std::move(m));
  return members_.size() - 1;
}

bool GraphDatabase::PassesFilter(size_t id, const PatternQuery& q) const {
  const Member& m = members_[id];
  // Every query label must occur in the member.
  for (QueryNodeId v = 0; v < q.NumNodes(); ++v) {
    LabelId l = q.Label(v);
    if (l >= m.label_counts.size() || m.label_counts[l] == 0) return false;
  }
  // Every CHILD query edge needs a data edge with the same label pair.
  // (Descendant edges can match paths, so only the label test applies.)
  for (const QueryEdge& e : q.Edges()) {
    if (e.kind != EdgeKind::kChild) continue;
    uint64_t feature = (static_cast<uint64_t>(q.Label(e.from)) << 32) |
                       q.Label(e.to);
    if (!std::binary_search(m.edge_labels.begin(), m.edge_labels.end(),
                            feature)) {
      return false;
    }
  }
  return true;
}

bool GraphDatabase::Save(const std::string& path, std::string* error) const {
  ByteSink sink;
  sink.WriteU64(members_.size());
  for (const Member& m : members_) {
    m.graph.Serialize(sink);
    sink.WriteString(m.name);
    sink.WriteSpan<uint32_t>(m.label_counts);
    sink.WriteSpan<uint64_t>(m.edge_labels);
  }
  return WriteSnapshotFile(path, SnapshotKind::kGraphDatabase, sink, error);
}

std::optional<GraphDatabase> GraphDatabase::Load(const std::string& path,
                                                 const LoadOptions& options,
                                                 std::string* error) {
  if (!options.delta_path.empty()) {
    if (error != nullptr) {
      *error = "delta overlay is not supported for database snapshots";
    }
    return std::nullopt;
  }
  if (options.expected_kind != SnapshotKind{0} &&
      options.expected_kind != SnapshotKind::kGraphDatabase) {
    if (error != nullptr) {
      *error = "caller expects snapshot kind " +
               std::to_string(static_cast<uint32_t>(options.expected_kind)) +
               " but this loader decodes kind " +
               std::to_string(
                   static_cast<uint32_t>(SnapshotKind::kGraphDatabase));
    }
    return std::nullopt;
  }
  SnapshotReader reader(path, SnapshotKind::kGraphDatabase, options.io_mode);
  if (!reader.ok()) {
    if (error != nullptr) *error = reader.error();
    return std::nullopt;
  }
  ByteSource& src = reader.source();
  GraphDatabase db;
  db.storage_ = src.storage();  // keeps a zero-copy mapping alive
  uint64_t count = src.ReadU64();
  for (uint64_t i = 0; i < count && src.ok(); ++i) {
    Member m;
    m.graph = Graph::Deserialize(src);
    m.name = src.ReadString();
    src.ReadSpan(&m.label_counts);
    src.ReadSpan(&m.edge_labels);
    if (src.ok() && m.label_counts.size() != m.graph.NumLabels()) {
      src.Fail("member feature vector does not match its graph");
    }
    db.members_.push_back(std::move(m));
  }
  if (!reader.Finish()) {
    if (error != nullptr) *error = reader.error();
    return std::nullopt;
  }
  return db;
}

namespace {

bool VerifyMember(const Graph& g, const PatternQuery& q, bool isomorphic) {
  if (isomorphic) {
    IsoOptions iopts;
    iopts.limit = 1;  // existence is enough
    IsoResult r = IsoEvaluate(g, q, iopts);
    return r.status == EvalStatus::kOk && r.num_embeddings > 0;
  }
  GmEngine engine(g);
  GmOptions gopts;
  gopts.limit = 1;
  return engine.Evaluate(q, gopts).num_occurrences > 0;
}

}  // namespace

std::vector<size_t> GraphDatabase::Search(const PatternQuery& q,
                                          const SearchOptions& opts,
                                          SearchStats* stats) const {
  // --- Filter stage: cheap feature checks, always sequential.
  std::vector<size_t> candidates;
  for (size_t id = 0; id < members_.size(); ++id) {
    if (PassesFilter(id, q)) candidates.push_back(id);
  }
  if (stats != nullptr) {
    stats->candidates_after_filter = candidates.size();
    stats->verified = candidates.size();
  }

  // --- Verify stage: each surviving member is an independent evaluation, so
  // workers just pull candidate indices from a shared atomic counter.
  uint32_t workers = ResolveWorkerCount(opts.num_threads, candidates.size());

  std::vector<size_t> hits;
  if (workers <= 1) {
    for (size_t id : candidates) {
      if (VerifyMember(members_[id].graph, q, opts.isomorphic)) {
        hits.push_back(id);
      }
    }
    return hits;
  }

  std::vector<uint8_t> contains(candidates.size(), 0);
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (uint32_t t = 0; t < workers; ++t) {
    threads.emplace_back([&] {
      for (size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < candidates.size();
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        contains[i] =
            VerifyMember(members_[candidates[i]].graph, q, opts.isomorphic);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (size_t i = 0; i < candidates.size(); ++i) {
    if (contains[i]) hits.push_back(candidates[i]);
  }
  return hits;
}

}  // namespace rigpm
