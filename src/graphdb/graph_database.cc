#include "graphdb/graph_database.h"

#include <algorithm>

#include "baseline/iso_engine.h"
#include "engine/gm_engine.h"

namespace rigpm {

std::vector<uint64_t> GraphDatabase::EdgeLabelFeatures(const Graph& g) {
  std::vector<uint64_t> features;
  features.reserve(g.NumEdges());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (NodeId w : g.OutNeighbors(v)) {
      features.push_back((static_cast<uint64_t>(g.Label(v)) << 32) |
                         g.Label(w));
    }
  }
  std::sort(features.begin(), features.end());
  features.erase(std::unique(features.begin(), features.end()),
                 features.end());
  return features;
}

size_t GraphDatabase::Add(Graph g, std::string name) {
  Member m;
  m.label_counts.assign(g.NumLabels(), 0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) ++m.label_counts[g.Label(v)];
  m.edge_labels = EdgeLabelFeatures(g);
  m.graph = std::move(g);
  m.name = std::move(name);
  members_.push_back(std::move(m));
  return members_.size() - 1;
}

bool GraphDatabase::PassesFilter(size_t id, const PatternQuery& q) const {
  const Member& m = members_[id];
  // Every query label must occur in the member.
  for (QueryNodeId v = 0; v < q.NumNodes(); ++v) {
    LabelId l = q.Label(v);
    if (l >= m.label_counts.size() || m.label_counts[l] == 0) return false;
  }
  // Every CHILD query edge needs a data edge with the same label pair.
  // (Descendant edges can match paths, so only the label test applies.)
  for (const QueryEdge& e : q.Edges()) {
    if (e.kind != EdgeKind::kChild) continue;
    uint64_t feature = (static_cast<uint64_t>(q.Label(e.from)) << 32) |
                       q.Label(e.to);
    if (!std::binary_search(m.edge_labels.begin(), m.edge_labels.end(),
                            feature)) {
      return false;
    }
  }
  return true;
}

std::vector<size_t> GraphDatabase::Search(const PatternQuery& q,
                                          const SearchOptions& opts,
                                          SearchStats* stats) const {
  std::vector<size_t> hits;
  size_t candidates = 0, verified = 0;
  for (size_t id = 0; id < members_.size(); ++id) {
    if (!PassesFilter(id, q)) continue;
    ++candidates;
    ++verified;
    bool contains = false;
    if (opts.isomorphic) {
      IsoOptions iopts;
      iopts.limit = 1;  // existence is enough
      IsoResult r = IsoEvaluate(members_[id].graph, q, iopts);
      contains = (r.status == EvalStatus::kOk && r.num_embeddings > 0);
    } else {
      GmEngine engine(members_[id].graph);
      GmOptions gopts;
      gopts.limit = 1;
      contains = engine.Evaluate(q, gopts).num_occurrences > 0;
    }
    if (contains) hits.push_back(id);
  }
  if (stats != nullptr) {
    stats->candidates_after_filter = candidates;
    stats->verified = verified;
  }
  return hits;
}

}  // namespace rigpm
