#include "graph/graph_builder.h"

#include <cassert>

namespace rigpm {

NodeId GraphBuilder::AddNode(LabelId label) {
  labels_.push_back(label);
  return static_cast<NodeId>(labels_.size() - 1);
}

void GraphBuilder::AddEdge(NodeId from, NodeId to) {
  assert(from < labels_.size() && to < labels_.size());
  edges_.emplace_back(from, to);
}

Graph GraphBuilder::Build() && {
  return Graph::FromEdges(std::move(labels_), std::move(edges_));
}

}  // namespace rigpm
