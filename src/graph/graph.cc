#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace rigpm {

Graph Graph::FromEdges(std::vector<LabelId> labels,
                       std::vector<std::pair<NodeId, NodeId>> edges) {
  Graph g;
  g.labels_ = std::move(labels);
  const uint32_t n = g.NumNodes();
  g.num_labels_ = 0;
  for (LabelId l : g.labels_) g.num_labels_ = std::max(g.num_labels_, l + 1);

  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  g.fwd_offsets_.assign(n + 1, 0);
  g.bwd_offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : edges) {
    assert(u < n && v < n);
    ++g.fwd_offsets_[u + 1];
    ++g.bwd_offsets_[v + 1];
  }
  for (uint32_t i = 0; i < n; ++i) {
    g.fwd_offsets_[i + 1] += g.fwd_offsets_[i];
    g.bwd_offsets_[i + 1] += g.bwd_offsets_[i];
  }
  g.fwd_targets_.resize(edges.size());
  g.bwd_targets_.resize(edges.size());
  std::vector<uint64_t> fpos(g.fwd_offsets_.begin(), g.fwd_offsets_.end() - 1);
  std::vector<uint64_t> bpos(g.bwd_offsets_.begin(), g.bwd_offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.fwd_targets_[fpos[u]++] = v;
    g.bwd_targets_[bpos[v]++] = u;
  }
  // Forward targets are already sorted per source (edge list was sorted);
  // backward targets need a per-node sort.
  for (uint32_t v = 0; v < n; ++v) {
    std::sort(g.bwd_targets_.begin() + static_cast<ptrdiff_t>(g.bwd_offsets_[v]),
              g.bwd_targets_.begin() + static_cast<ptrdiff_t>(g.bwd_offsets_[v + 1]));
  }

  g.BuildDerivedStructures();
  return g;
}

void Graph::BuildDerivedStructures() {
  const uint32_t n = NumNodes();

  // Label inverted lists.
  label_offsets_.assign(num_labels_ + 1, 0);
  for (LabelId l : labels_) ++label_offsets_[l + 1];
  for (uint32_t i = 0; i < num_labels_; ++i) {
    label_offsets_[i + 1] += label_offsets_[i];
  }
  label_nodes_.resize(n);
  std::vector<uint64_t> pos(label_offsets_.begin(), label_offsets_.end() - 1);
  for (NodeId v = 0; v < n; ++v) label_nodes_[pos[labels_[v]]++] = v;

  // Bitmap forms of adjacency and inverted lists.
  fwd_bitmaps_.resize(n);
  bwd_bitmaps_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    fwd_bitmaps_[v] = Bitmap::FromSorted(OutNeighbors(v));
    bwd_bitmaps_[v] = Bitmap::FromSorted(InNeighbors(v));
  }
  label_bitmaps_.resize(num_labels_);
  for (LabelId a = 0; a < num_labels_; ++a) {
    label_bitmaps_[a] = Bitmap::FromSorted(LabelNodes(a));
  }
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  auto neigh = OutNeighbors(u);
  return std::binary_search(neigh.begin(), neigh.end(), v);
}

uint32_t Graph::MaxLabelListSize() const {
  uint32_t best = 0;
  for (LabelId a = 0; a < num_labels_; ++a) best = std::max(best, LabelCount(a));
  return best;
}

void Graph::Serialize(ByteSink& sink) const {
  sink.WriteU32(num_labels_);
  sink.WriteVec(labels_);
  sink.WriteVec(fwd_offsets_);
  sink.WriteVec(fwd_targets_);
  sink.WriteVec(bwd_offsets_);
  sink.WriteVec(bwd_targets_);
  sink.WriteVec(label_offsets_);
  sink.WriteVec(label_nodes_);
  for (const Bitmap& b : fwd_bitmaps_) b.Serialize(sink);
  for (const Bitmap& b : bwd_bitmaps_) b.Serialize(sink);
  for (const Bitmap& b : label_bitmaps_) b.Serialize(sink);
}

Graph Graph::Deserialize(ByteSource& src) {
  Graph g;
  g.num_labels_ = src.ReadU32();
  src.ReadVec(&g.labels_);
  src.ReadVec(&g.fwd_offsets_);
  src.ReadVec(&g.fwd_targets_);
  src.ReadVec(&g.bwd_offsets_);
  src.ReadVec(&g.bwd_targets_);
  src.ReadVec(&g.label_offsets_);
  src.ReadVec(&g.label_nodes_);
  if (!src.ok()) return Graph();
  const size_t n = g.labels_.size();
  // Structural invariants: offset arrays bracket their target arrays and
  // every projection array has one entry per node. Anything else would make
  // the accessors read out of bounds.
  if (g.fwd_offsets_.size() != n + 1 || g.bwd_offsets_.size() != n + 1 ||
      g.label_offsets_.size() != g.num_labels_ + 1 ||
      g.fwd_offsets_.front() != 0 || g.bwd_offsets_.front() != 0 ||
      g.label_offsets_.front() != 0 ||
      g.fwd_offsets_.back() != g.fwd_targets_.size() ||
      g.bwd_offsets_.back() != g.bwd_targets_.size() ||
      g.label_offsets_.back() != g.label_nodes_.size() ||
      g.label_nodes_.size() != n) {
    src.Fail("graph snapshot structure is inconsistent");
    return Graph();
  }
  for (size_t i = 0; i + 1 < g.fwd_offsets_.size(); ++i) {
    if (g.fwd_offsets_[i] > g.fwd_offsets_[i + 1] ||
        g.bwd_offsets_[i] > g.bwd_offsets_[i + 1]) {
      src.Fail("graph snapshot offsets are not monotone");
      return Graph();
    }
  }
  for (LabelId l : g.labels_) {
    if (l >= g.num_labels_) {
      src.Fail("graph snapshot label out of range");
      return Graph();
    }
  }
  for (NodeId v : g.fwd_targets_) {
    if (v >= n) {
      src.Fail("graph snapshot edge target out of range");
      return Graph();
    }
  }
  for (NodeId v : g.bwd_targets_) {
    if (v >= n) {
      src.Fail("graph snapshot edge source out of range");
      return Graph();
    }
  }
  for (NodeId v : g.label_nodes_) {
    if (v >= n) {
      src.Fail("graph snapshot label list entry out of range");
      return Graph();
    }
  }
  auto read_bitmaps = [&src](size_t count, std::vector<Bitmap>* out) {
    out->resize(count);
    for (size_t i = 0; i < count && src.ok(); ++i) {
      (*out)[i] = Bitmap::Deserialize(src);
    }
  };
  read_bitmaps(n, &g.fwd_bitmaps_);
  read_bitmaps(n, &g.bwd_bitmaps_);
  read_bitmaps(g.num_labels_, &g.label_bitmaps_);
  if (!src.ok()) return Graph();
  return g;
}

Graph Graph::MakeBidirected(const Graph& g) {
  std::vector<LabelId> labels(g.labels_);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(g.NumEdges() * 2);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (NodeId w : g.OutNeighbors(v)) {
      edges.emplace_back(v, w);
      edges.emplace_back(w, v);
    }
  }
  return FromEdges(std::move(labels), std::move(edges));
}

std::string Graph::Summary() const {
  std::ostringstream os;
  os << "|V|=" << NumNodes() << " |E|=" << NumEdges() << " |L|=" << NumLabels()
     << " d_avg=" << AverageDegree();
  return os.str();
}

}  // namespace rigpm
