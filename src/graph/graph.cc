#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace rigpm {

Graph Graph::FromEdges(std::vector<LabelId> labels,
                       std::vector<std::pair<NodeId, NodeId>> edges) {
  Graph g;
  g.labels_ = std::move(labels);
  const uint32_t n = g.NumNodes();
  g.num_labels_ = 0;
  for (LabelId l : g.labels_) g.num_labels_ = std::max(g.num_labels_, l + 1);

  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  std::vector<uint64_t>& fwd_offsets = g.fwd_offsets_.Mutable();
  std::vector<uint64_t>& bwd_offsets = g.bwd_offsets_.Mutable();
  std::vector<NodeId>& fwd_targets = g.fwd_targets_.Mutable();
  std::vector<NodeId>& bwd_targets = g.bwd_targets_.Mutable();
  fwd_offsets.assign(n + 1, 0);
  bwd_offsets.assign(n + 1, 0);
  for (const auto& [u, v] : edges) {
    assert(u < n && v < n);
    ++fwd_offsets[u + 1];
    ++bwd_offsets[v + 1];
  }
  for (uint32_t i = 0; i < n; ++i) {
    fwd_offsets[i + 1] += fwd_offsets[i];
    bwd_offsets[i + 1] += bwd_offsets[i];
  }
  fwd_targets.resize(edges.size());
  bwd_targets.resize(edges.size());
  std::vector<uint64_t> fpos(fwd_offsets.begin(), fwd_offsets.end() - 1);
  std::vector<uint64_t> bpos(bwd_offsets.begin(), bwd_offsets.end() - 1);
  for (const auto& [u, v] : edges) {
    fwd_targets[fpos[u]++] = v;
    bwd_targets[bpos[v]++] = u;
  }
  // Forward targets are already sorted per source (edge list was sorted);
  // backward targets need a per-node sort.
  for (uint32_t v = 0; v < n; ++v) {
    std::sort(bwd_targets.begin() + static_cast<ptrdiff_t>(bwd_offsets[v]),
              bwd_targets.begin() + static_cast<ptrdiff_t>(bwd_offsets[v + 1]));
  }

  g.BuildDerivedStructures();
  return g;
}

void Graph::BuildDerivedStructures() {
  const uint32_t n = NumNodes();

  // Label inverted lists.
  std::vector<uint64_t>& label_offsets = label_offsets_.Mutable();
  std::vector<NodeId>& label_nodes = label_nodes_.Mutable();
  label_offsets.assign(num_labels_ + 1, 0);
  for (LabelId l : labels_) ++label_offsets[l + 1];
  for (uint32_t i = 0; i < num_labels_; ++i) {
    label_offsets[i + 1] += label_offsets[i];
  }
  label_nodes.resize(n);
  std::vector<uint64_t> pos(label_offsets.begin(), label_offsets.end() - 1);
  for (NodeId v = 0; v < n; ++v) label_nodes[pos[labels_[v]]++] = v;

  // Bitmap forms of adjacency and inverted lists.
  fwd_bitmaps_.resize(n);
  bwd_bitmaps_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    fwd_bitmaps_[v] = Bitmap::FromSorted(OutNeighbors(v));
    bwd_bitmaps_[v] = Bitmap::FromSorted(InNeighbors(v));
  }
  label_bitmaps_.resize(num_labels_);
  for (LabelId a = 0; a < num_labels_; ++a) {
    label_bitmaps_[a] = Bitmap::FromSorted(LabelNodes(a));
  }
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  auto neigh = OutNeighbors(u);
  return std::binary_search(neigh.begin(), neigh.end(), v);
}

uint32_t Graph::MaxLabelListSize() const {
  uint32_t best = 0;
  for (LabelId a = 0; a < num_labels_; ++a) {
    best = std::max(best, LabelCount(a));
  }
  return best;
}

void Graph::Serialize(ByteSink& sink) const {
  sink.WriteU32(num_labels_);
  sink.WriteSpan<LabelId>(labels_);
  sink.WriteSpan<uint64_t>(fwd_offsets_);
  sink.WriteSpan<NodeId>(fwd_targets_);
  sink.WriteSpan<uint64_t>(bwd_offsets_);
  sink.WriteSpan<NodeId>(bwd_targets_);
  sink.WriteSpan<uint64_t>(label_offsets_);
  sink.WriteSpan<NodeId>(label_nodes_);
  for (const Bitmap& b : fwd_bitmaps_) b.Serialize(sink);
  for (const Bitmap& b : bwd_bitmaps_) b.Serialize(sink);
  for (const Bitmap& b : label_bitmaps_) b.Serialize(sink);
}

Graph Graph::Deserialize(ByteSource& src) {
  Graph g;
  g.storage_ = src.storage();  // keeps a zero-copy mapping alive
  g.num_labels_ = src.ReadU32();
  src.ReadSpan(&g.labels_);
  src.ReadSpan(&g.fwd_offsets_);
  src.ReadSpan(&g.fwd_targets_);
  src.ReadSpan(&g.bwd_offsets_);
  src.ReadSpan(&g.bwd_targets_);
  src.ReadSpan(&g.label_offsets_);
  src.ReadSpan(&g.label_nodes_);
  if (!src.ok()) return Graph();
  const size_t n = g.labels_.size();
  // Structural invariants: offset arrays bracket their target arrays and
  // every projection array has one entry per node. Anything else would make
  // the accessors read out of bounds. (The label count is widened before
  // the +1: num_labels_ = 0xFFFFFFFF must not wrap to an expected size of
  // 0 and slip an empty offsets array past the check.)
  if (g.fwd_offsets_.size() != n + 1 || g.bwd_offsets_.size() != n + 1 ||
      g.label_offsets_.size() != static_cast<uint64_t>(g.num_labels_) + 1 ||
      g.fwd_offsets_.front() != 0 || g.bwd_offsets_.front() != 0 ||
      g.label_offsets_.front() != 0 ||
      g.fwd_offsets_.back() != g.fwd_targets_.size() ||
      g.bwd_offsets_.back() != g.bwd_targets_.size() ||
      g.label_offsets_.back() != g.label_nodes_.size() ||
      g.label_nodes_.size() != n) {
    src.Fail("graph snapshot structure is inconsistent");
    return Graph();
  }
  for (size_t i = 0; i + 1 < g.fwd_offsets_.size(); ++i) {
    if (g.fwd_offsets_[i] > g.fwd_offsets_[i + 1] ||
        g.bwd_offsets_[i] > g.bwd_offsets_[i + 1]) {
      src.Fail("graph snapshot offsets are not monotone");
      return Graph();
    }
  }
  for (LabelId l : g.labels_) {
    if (l >= g.num_labels_) {
      src.Fail("graph snapshot label out of range");
      return Graph();
    }
  }
  for (NodeId v : g.fwd_targets_) {
    if (v >= n) {
      src.Fail("graph snapshot edge target out of range");
      return Graph();
    }
  }
  for (NodeId v : g.bwd_targets_) {
    if (v >= n) {
      src.Fail("graph snapshot edge source out of range");
      return Graph();
    }
  }
  for (NodeId v : g.label_nodes_) {
    if (v >= n) {
      src.Fail("graph snapshot label list entry out of range");
      return Graph();
    }
  }
  auto read_bitmaps = [&src](size_t count, std::vector<Bitmap>* out) {
    out->resize(count);
    for (size_t i = 0; i < count && src.ok(); ++i) {
      (*out)[i] = Bitmap::Deserialize(src);
    }
  };
  read_bitmaps(n, &g.fwd_bitmaps_);
  read_bitmaps(n, &g.bwd_bitmaps_);
  read_bitmaps(g.num_labels_, &g.label_bitmaps_);
  if (!src.ok()) return Graph();
  return g;
}

size_t Graph::OwnedHeapBytes() const {
  size_t bytes = labels_.OwnedHeapBytes() + fwd_offsets_.OwnedHeapBytes() +
                 fwd_targets_.OwnedHeapBytes() + bwd_offsets_.OwnedHeapBytes() +
                 bwd_targets_.OwnedHeapBytes() +
                 label_offsets_.OwnedHeapBytes() +
                 label_nodes_.OwnedHeapBytes();
  for (const Bitmap& b : fwd_bitmaps_) bytes += b.MemoryBytes();
  for (const Bitmap& b : bwd_bitmaps_) bytes += b.MemoryBytes();
  for (const Bitmap& b : label_bitmaps_) bytes += b.MemoryBytes();
  return bytes;
}

BitmapContainerStats Graph::SectionStats(BitmapSection section) const {
  const std::vector<Bitmap>* bitmaps = nullptr;
  switch (section) {
    case BitmapSection::kForward:
      bitmaps = &fwd_bitmaps_;
      break;
    case BitmapSection::kBackward:
      bitmaps = &bwd_bitmaps_;
      break;
    case BitmapSection::kLabels:
      bitmaps = &label_bitmaps_;
      break;
  }
  BitmapContainerStats stats;
  for (const Bitmap& b : *bitmaps) b.AccumulateStats(&stats);
  return stats;
}

Graph Graph::MakeBidirected(const Graph& g) {
  std::vector<LabelId> labels(g.labels_.begin(), g.labels_.end());
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(g.NumEdges() * 2);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (NodeId w : g.OutNeighbors(v)) {
      edges.emplace_back(v, w);
      edges.emplace_back(w, v);
    }
  }
  return FromEdges(std::move(labels), std::move(edges));
}

std::string Graph::Summary() const {
  std::ostringstream os;
  os << "|V|=" << NumNodes() << " |E|=" << NumEdges() << " |L|=" << NumLabels()
     << " d_avg=" << AverageDegree();
  return os.str();
}

}  // namespace rigpm
