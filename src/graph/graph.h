#ifndef RIGPM_GRAPH_GRAPH_H_
#define RIGPM_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bitmap/bitmap.h"
#include "util/owned_span.h"

namespace rigpm {

/// Node identifier in a data graph (dense, 0-based).
using NodeId = uint32_t;
/// Label identifier (dense, 0-based).
using LabelId = uint32_t;

constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// An immutable directed node-labeled data graph in CSR form (Definition 2.1).
///
/// Both directions of the adjacency are materialized: forward lists (`adjf`
/// in the paper) and backward lists (`adjb`). Per-node adjacency is also
/// available as compressed bitmaps, which is what `BuildRIG`, double
/// simulation's batch checks, and MJoin intersect against (Sections 4.5, 5).
/// Label inverted lists `I_a` (Section 2) are exposed both as sorted vectors
/// and as bitmaps.
///
/// Construct via `GraphBuilder` (graph_builder.h) or the generators.
class Graph {
 public:
  Graph() = default;

  /// Builds from a label array and an edge list. Self-loops are kept
  /// (they matter for reachability semantics); duplicate edges are removed.
  static Graph FromEdges(std::vector<LabelId> labels,
                         std::vector<std::pair<NodeId, NodeId>> edges);

  uint32_t NumNodes() const { return static_cast<uint32_t>(labels_.size()); }
  uint64_t NumEdges() const { return fwd_targets_.size(); }
  uint32_t NumLabels() const { return num_labels_; }

  LabelId Label(NodeId v) const { return labels_[v]; }

  uint32_t OutDegree(NodeId v) const {
    return static_cast<uint32_t>(fwd_offsets_[v + 1] - fwd_offsets_[v]);
  }
  uint32_t InDegree(NodeId v) const {
    return static_cast<uint32_t>(bwd_offsets_[v + 1] - bwd_offsets_[v]);
  }

  /// Forward (children) adjacency of `v`, sorted by node id.
  std::span<const NodeId> OutNeighbors(NodeId v) const {
    return {fwd_targets_.data() + fwd_offsets_[v],
            fwd_targets_.data() + fwd_offsets_[v + 1]};
  }
  /// Backward (parents) adjacency of `v`, sorted by node id.
  std::span<const NodeId> InNeighbors(NodeId v) const {
    return {bwd_targets_.data() + bwd_offsets_[v],
            bwd_targets_.data() + bwd_offsets_[v + 1]};
  }

  /// True iff (u, v) is an edge. O(log OutDegree(u)).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Forward adjacency of `v` as a compressed bitmap.
  const Bitmap& OutBitmap(NodeId v) const { return fwd_bitmaps_[v]; }
  /// Backward adjacency of `v` as a compressed bitmap.
  const Bitmap& InBitmap(NodeId v) const { return bwd_bitmaps_[v]; }

  /// Inverted list I_a: all nodes labeled `a`, sorted.
  std::span<const NodeId> LabelNodes(LabelId a) const {
    return {label_nodes_.data() + label_offsets_[a],
            label_nodes_.data() + label_offsets_[a + 1]};
  }
  /// Inverted list I_a as a bitmap.
  const Bitmap& LabelBitmap(LabelId a) const { return label_bitmaps_[a]; }

  uint32_t LabelCount(LabelId a) const {
    return static_cast<uint32_t>(label_offsets_[a + 1] - label_offsets_[a]);
  }

  /// Size |I_max| of the largest inverted list (complexity analyses, §4.3).
  uint32_t MaxLabelListSize() const;

  double AverageDegree() const {
    return NumNodes() == 0 ? 0.0
                           : static_cast<double>(NumEdges()) / NumNodes();
  }

  /// Human-readable one-line summary (|V|, |E|, |L|, d_avg).
  std::string Summary() const;

  /// Appends a binary image of the whole graph — CSR arrays, label inverted
  /// lists, and the derived bitmaps — to `sink` (storage/snapshot.h frames
  /// it into a snapshot file). Loading is pure I/O: nothing is recomputed.
  void Serialize(ByteSink& sink) const;

  /// Decodes an image written by Serialize. On malformed input `src.ok()`
  /// turns false and an empty graph is returned. In zero-copy mode the CSR
  /// arrays, label lists, and bitmap container payloads borrow directly
  /// from the source's backing storage; the graph retains the storage
  /// ownership token (`src.storage()`), so it stays valid for its whole
  /// lifetime and through moves. Copies deep-copy into private storage.
  static Graph Deserialize(ByteSource& src);

  /// Heap bytes owned by this graph. Borrowed snapshot-mapping storage is
  /// excluded — it is shared between every process mapping the snapshot.
  size_t OwnedHeapBytes() const;

  /// Container census of one bitmap section (`rigpm_cli snapshot --inspect`
  /// and the memory benches).
  enum class BitmapSection { kForward, kBackward, kLabels };
  BitmapContainerStats SectionStats(BitmapSection section) const;

  /// Returns a copy with every edge also present in the reverse direction —
  /// the "store each edge in both directions" transformation the paper uses
  /// to compare against engines that treat data graphs as undirected
  /// (RapidMatch, Section 7.5).
  static Graph MakeBidirected(const Graph& g);

 private:
  friend class GraphBuilder;

  void BuildDerivedStructures();

  // Owned vectors when built in-process; borrowed views into the snapshot
  // mapping when loaded zero-copy (storage_ keeps the mapping alive).
  OwnedOrBorrowedSpan<LabelId> labels_;
  uint32_t num_labels_ = 0;

  OwnedOrBorrowedSpan<uint64_t> fwd_offsets_;  // size NumNodes()+1
  OwnedOrBorrowedSpan<NodeId> fwd_targets_;
  OwnedOrBorrowedSpan<uint64_t> bwd_offsets_;
  OwnedOrBorrowedSpan<NodeId> bwd_targets_;

  OwnedOrBorrowedSpan<uint64_t> label_offsets_;  // size NumLabels()+1
  OwnedOrBorrowedSpan<NodeId> label_nodes_;

  std::vector<Bitmap> fwd_bitmaps_;
  std::vector<Bitmap> bwd_bitmaps_;
  std::vector<Bitmap> label_bitmaps_;

  // Ownership token for borrowed storage (null for built graphs); e.g. the
  // shared_ptr<MappedFile> of the snapshot the graph was loaded from.
  std::shared_ptr<const void> storage_;
};

}  // namespace rigpm

#endif  // RIGPM_GRAPH_GRAPH_H_
