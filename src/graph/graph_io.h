#ifndef RIGPM_GRAPH_GRAPH_IO_H_
#define RIGPM_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/graph.h"

namespace rigpm {

/// Text serialization of data graphs.
///
/// Format (one record per line, '#' starts a comment):
///   t <num_nodes> <num_edges>     -- header (optional but recommended)
///   v <node_id> <label_id>        -- node declaration
///   e <src_id> <dst_id>           -- edge declaration
///
/// This is the same shape as the SNAP-derived files used by subgraph-matching
/// papers, so real datasets can be dropped in when available.
///
/// The reader validates its input: node ids must be dense and declared
/// before any edge references them (with or without a `t` header), and a
/// header's node/edge counts must match the number of `v`/`e` records.
/// Violations are reported through the `error` out-parameter.
///
/// For restart-speed-critical paths prefer the binary snapshot format
/// (storage/snapshot.h), which skips parsing entirely.

/// Writes `g` to `out` in the text format above.
void WriteGraph(const Graph& g, std::ostream& out);

/// Parses a graph from `in`. Returns std::nullopt (and fills *error when
/// non-null) on malformed input.
std::optional<Graph> ReadGraph(std::istream& in, std::string* error = nullptr);

/// File convenience wrappers.
bool WriteGraphFile(const Graph& g, const std::string& path,
                    std::string* error = nullptr);
std::optional<Graph> ReadGraphFile(const std::string& path,
                                   std::string* error = nullptr);

}  // namespace rigpm

#endif  // RIGPM_GRAPH_GRAPH_IO_H_
