#include "graph/interval_labels.h"

namespace rigpm {

IntervalLabels::IntervalLabels(const Graph& g, const Condensation& cond) {
  const uint32_t nc = cond.NumComponents();
  begin_.assign(nc, 0);
  end_.assign(nc, 0);

  // Iterative DFS over the condensation DAG, restarting at every unvisited
  // component in topological order so sources are natural roots.
  std::vector<uint8_t> visited(nc, 0);
  std::vector<std::pair<uint32_t, uint32_t>> stack;  // (comp, next child pos)
  uint32_t clock = 0;
  for (uint32_t root : cond.TopologicalOrder()) {
    if (visited[root]) continue;
    visited[root] = 1;
    begin_[root] = clock++;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      uint32_t c = stack.back().first;
      auto succ = cond.Successors(c);
      bool descended = false;
      while (stack.back().second < succ.size()) {
        uint32_t child = succ[stack.back().second++];
        if (!visited[child]) {
          visited[child] = 1;
          begin_[child] = clock++;
          stack.emplace_back(child, 0);
          descended = true;
          break;
        }
      }
      if (!descended) {
        end_[c] = clock++;
        stack.pop_back();
      }
    }
  }

  const uint32_t n = g.NumNodes();
  begin_node_.resize(n);
  end_node_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    uint32_t c = cond.Component(v);
    begin_node_[v] = begin_[c];
    end_node_[v] = end_[c];
  }
}

void IntervalLabels::Serialize(ByteSink& sink) const {
  sink.WriteVec(begin_);
  sink.WriteVec(end_);
  sink.WriteVec(begin_node_);
  sink.WriteVec(end_node_);
}

IntervalLabels IntervalLabels::Deserialize(ByteSource& src) {
  IntervalLabels labels;
  src.ReadVec(&labels.begin_);
  src.ReadVec(&labels.end_);
  src.ReadVec(&labels.begin_node_);
  src.ReadVec(&labels.end_node_);
  if (!src.ok()) return IntervalLabels();
  if (labels.end_.size() != labels.begin_.size() ||
      labels.end_node_.size() != labels.begin_node_.size()) {
    src.Fail("interval label snapshot structure is inconsistent");
    return IntervalLabels();
  }
  return labels;
}

}  // namespace rigpm
