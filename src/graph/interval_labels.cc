#include "graph/interval_labels.h"

namespace rigpm {

IntervalLabels::IntervalLabels(const Graph& g, const Condensation& cond) {
  const uint32_t nc = cond.NumComponents();
  std::vector<uint32_t>& begin = begin_.Mutable();
  std::vector<uint32_t>& end = end_.Mutable();
  begin.assign(nc, 0);
  end.assign(nc, 0);

  // Iterative DFS over the condensation DAG, restarting at every unvisited
  // component in topological order so sources are natural roots.
  std::vector<uint8_t> visited(nc, 0);
  std::vector<std::pair<uint32_t, uint32_t>> stack;  // (comp, next child pos)
  uint32_t clock = 0;
  for (uint32_t root : cond.TopologicalOrder()) {
    if (visited[root]) continue;
    visited[root] = 1;
    begin[root] = clock++;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      uint32_t c = stack.back().first;
      auto succ = cond.Successors(c);
      bool descended = false;
      while (stack.back().second < succ.size()) {
        uint32_t child = succ[stack.back().second++];
        if (!visited[child]) {
          visited[child] = 1;
          begin[child] = clock++;
          stack.emplace_back(child, 0);
          descended = true;
          break;
        }
      }
      if (!descended) {
        end[c] = clock++;
        stack.pop_back();
      }
    }
  }

  const uint32_t n = g.NumNodes();
  std::vector<uint32_t>& begin_node = begin_node_.Mutable();
  std::vector<uint32_t>& end_node = end_node_.Mutable();
  begin_node.resize(n);
  end_node.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    uint32_t c = cond.Component(v);
    begin_node[v] = begin[c];
    end_node[v] = end[c];
  }
}

void IntervalLabels::Serialize(ByteSink& sink) const {
  sink.WriteSpan<uint32_t>(begin_);
  sink.WriteSpan<uint32_t>(end_);
  sink.WriteSpan<uint32_t>(begin_node_);
  sink.WriteSpan<uint32_t>(end_node_);
}

IntervalLabels IntervalLabels::Deserialize(ByteSource& src) {
  IntervalLabels labels;
  labels.storage_ = src.storage();  // keeps a zero-copy mapping alive
  src.ReadSpan(&labels.begin_);
  src.ReadSpan(&labels.end_);
  src.ReadSpan(&labels.begin_node_);
  src.ReadSpan(&labels.end_node_);
  if (!src.ok()) return IntervalLabels();
  if (labels.end_.size() != labels.begin_.size() ||
      labels.end_node_.size() != labels.begin_node_.size()) {
    src.Fail("interval label snapshot structure is inconsistent");
    return IntervalLabels();
  }
  return labels;
}

}  // namespace rigpm
