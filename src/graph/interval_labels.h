#ifndef RIGPM_GRAPH_INTERVAL_LABELS_H_
#define RIGPM_GRAPH_INTERVAL_LABELS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "graph/scc.h"
#include "util/owned_span.h"

namespace rigpm {

/// DFS interval labels (begin, end) over the SCC condensation of a data
/// graph, projected back onto data nodes (Section 4.5, "Early expansion
/// termination for dags").
///
/// Properties used by the framework (u, v data nodes in different SCCs):
///  * negative cut:   End(u) <  Begin(v)  =>  u does NOT reach v.
///  * positive cut:   Begin(u) < Begin(v) && End(v) <= End(u)
///                    => u reaches v (v lies in u's DFS subtree).
/// These hold because the DFS runs over the condensation DAG and a node
/// undiscovered when `u` finishes can never be below `u` in the DFS forest.
class IntervalLabels {
 public:
  /// Builds labels from a graph and its already-computed condensation.
  IntervalLabels(const Graph& g, const Condensation& cond);

  /// Begin / end timestamps of a data node (those of its component).
  uint32_t Begin(NodeId v) const { return begin_node_[v]; }
  uint32_t End(NodeId v) const { return end_node_[v]; }

  /// Component-level accessors.
  uint32_t CompBegin(uint32_t comp) const { return begin_[comp]; }
  uint32_t CompEnd(uint32_t comp) const { return end_[comp]; }

  /// Sizes the labels were built over (validation on snapshot load: these
  /// must match the condensation the labels are used with).
  uint64_t NumComponents() const { return begin_.size(); }
  uint64_t NumNodes() const { return begin_node_.size(); }

  /// Necessary condition: returns true when the labels *prove* u cannot
  /// reach v. False means "unknown".
  bool DefinitelyNotReaches(NodeId u, NodeId v) const {
    return end_node_[u] < begin_node_[v];
  }

  /// Sufficient condition: returns true when the labels *prove* u reaches v
  /// via DFS-tree containment. False means "unknown".
  bool DefinitelyReaches(NodeId u, NodeId v) const {
    return begin_node_[u] < begin_node_[v] && end_node_[v] <= end_node_[u];
  }

  /// Appends a binary image to `sink` (see storage/snapshot.h).
  void Serialize(ByteSink& sink) const;

  /// Decodes an image written by Serialize. On malformed input `src.ok()`
  /// turns false and empty labels are returned.
  static IntervalLabels Deserialize(ByteSource& src);

 private:
  IntervalLabels() = default;  // only Deserialize builds without a graph

  // Owned when built; borrowed views into the snapshot mapping when loaded
  // zero-copy (storage_ keeps the mapping alive).
  OwnedOrBorrowedSpan<uint32_t> begin_;       // per component
  OwnedOrBorrowedSpan<uint32_t> end_;         // per component
  OwnedOrBorrowedSpan<uint32_t> begin_node_;  // per data node
  OwnedOrBorrowedSpan<uint32_t> end_node_;    // per data node
  std::shared_ptr<const void> storage_;
};

}  // namespace rigpm

#endif  // RIGPM_GRAPH_INTERVAL_LABELS_H_
