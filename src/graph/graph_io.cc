#include "graph/graph_io.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace rigpm {

void WriteGraph(const Graph& g, std::ostream& out) {
  out << "t " << g.NumNodes() << ' ' << g.NumEdges() << '\n';
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    out << "v " << v << ' ' << g.Label(v) << '\n';
  }
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (NodeId w : g.OutNeighbors(v)) {
      out << "e " << v << ' ' << w << '\n';
    }
  }
}

std::optional<Graph> ReadGraph(std::istream& in, std::string* error) {
  auto fail = [error](const std::string& msg) -> std::optional<Graph> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };

  std::vector<LabelId> labels;
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::string line;
  size_t line_no = 0;
  bool have_header = false;
  uint64_t declared_nodes = 0, declared_edges = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 't') {
      if (have_header) {
        return fail("duplicate header at line " + std::to_string(line_no));
      }
      if (!(ls >> declared_nodes >> declared_edges)) {
        return fail("malformed header at line " + std::to_string(line_no));
      }
      have_header = true;
      labels.reserve(declared_nodes);
      edges.reserve(declared_edges);
    } else if (tag == 'v') {
      uint64_t id = 0, label = 0;
      if (!(ls >> id >> label)) {
        return fail("malformed node at line " + std::to_string(line_no));
      }
      if (id != labels.size()) {
        return fail("non-dense node id at line " + std::to_string(line_no));
      }
      labels.push_back(static_cast<LabelId>(label));
    } else if (tag == 'e') {
      uint64_t u = 0, v = 0;
      if (!(ls >> u >> v)) {
        return fail("malformed edge at line " + std::to_string(line_no));
      }
      // Endpoints must name already-declared nodes, with or without a
      // header: the header only pre-sizes, it declares nothing.
      if (u >= labels.size() || v >= labels.size()) {
        return fail("edge (" + std::to_string(u) + ", " + std::to_string(v) +
                    ") references an undeclared node at line " +
                    std::to_string(line_no));
      }
      edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
    } else {
      return fail("unknown record tag at line " + std::to_string(line_no));
    }
  }
  if (have_header && labels.size() != declared_nodes) {
    return fail("header declares " + std::to_string(declared_nodes) +
                " node(s) but " + std::to_string(labels.size()) +
                " were defined");
  }
  if (have_header && edges.size() != declared_edges) {
    return fail("header declares " + std::to_string(declared_edges) +
                " edge(s) but " + std::to_string(edges.size()) +
                " were defined");
  }
  return Graph::FromEdges(std::move(labels), std::move(edges));
}

bool WriteGraphFile(const Graph& g, const std::string& path,
                    std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  WriteGraph(g, out);
  return static_cast<bool>(out);
}

std::optional<Graph> ReadGraphFile(const std::string& path,
                                   std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  return ReadGraph(in, error);
}

}  // namespace rigpm
