#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <unordered_set>
#include <vector>

namespace rigpm {

namespace {

// Draws labels for all nodes; Zipf-skewed when opts.label_zipf > 0.
std::vector<LabelId> DrawLabels(const GeneratorOptions& opts,
                                std::mt19937_64& rng) {
  std::vector<LabelId> labels(opts.num_nodes);
  const uint32_t num_labels = std::max<uint32_t>(1, opts.num_labels);
  if (opts.label_zipf <= 0.0) {
    std::uniform_int_distribution<uint32_t> dist(0, num_labels - 1);
    for (auto& l : labels) l = dist(rng);
  } else {
    std::vector<double> weights(num_labels);
    for (uint32_t i = 0; i < num_labels; ++i) {
      weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), opts.label_zipf);
    }
    std::discrete_distribution<uint32_t> dist(weights.begin(), weights.end());
    for (auto& l : labels) l = dist(rng);
  }
  // Guarantee every label occurs at least once so inverted lists are
  // non-empty (keeps query instantiation deterministic).
  if (opts.num_nodes >= num_labels) {
    for (uint32_t i = 0; i < num_labels; ++i) labels[i] = i;
    std::shuffle(labels.begin(), labels.end(), rng);
  }
  return labels;
}

uint64_t EdgeKey(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

Graph GenerateErdosRenyi(const GeneratorOptions& opts) {
  std::mt19937_64 rng(opts.seed);
  std::vector<LabelId> labels = DrawLabels(opts, rng);
  const uint32_t n = opts.num_nodes;
  const uint64_t max_edges =
      static_cast<uint64_t>(n) * (n > 0 ? n - 1 : 0);
  const uint64_t m = std::min(opts.num_edges, max_edges);

  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(m);
  std::uniform_int_distribution<uint32_t> dist(0, n > 0 ? n - 1 : 0);
  while (edges.size() < m) {
    NodeId u = dist(rng);
    NodeId v = dist(rng);
    if (u == v) continue;
    if (seen.insert(EdgeKey(u, v)).second) edges.emplace_back(u, v);
  }
  return Graph::FromEdges(std::move(labels), std::move(edges));
}

Graph GeneratePowerLaw(const GeneratorOptions& opts) {
  std::mt19937_64 rng(opts.seed);
  std::vector<LabelId> labels = DrawLabels(opts, rng);
  const uint32_t n = opts.num_nodes;
  const uint64_t m = opts.num_edges;

  // Preferential attachment on the target side: targets are sampled from a
  // pool seeded with every node once and fed with each chosen endpoint, so
  // in-degrees follow a heavy tail. Sources are uniform.
  std::vector<NodeId> pool;
  pool.reserve(n + m);
  for (NodeId v = 0; v < n; ++v) pool.push_back(v);

  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(m);
  std::uniform_int_distribution<uint32_t> src_dist(0, n > 0 ? n - 1 : 0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  uint64_t attempts = 0;
  const uint64_t max_attempts = m * 20 + 1000;
  while (edges.size() < m && attempts < max_attempts) {
    ++attempts;
    NodeId u = src_dist(rng);
    std::uniform_int_distribution<size_t> pool_dist(0, pool.size() - 1);
    NodeId v = pool[pool_dist(rng)];
    // Allow the occasional self loop (~0.1%) so cyclic SCC handling is
    // exercised, as in real web graphs.
    if (u == v && coin(rng) > 0.001) continue;
    if (!seen.insert(EdgeKey(u, v)).second) continue;
    edges.emplace_back(u, v);
    pool.push_back(v);
  }
  return Graph::FromEdges(std::move(labels), std::move(edges));
}

Graph GenerateRandomDag(const GeneratorOptions& opts) {
  std::mt19937_64 rng(opts.seed);
  std::vector<LabelId> labels = DrawLabels(opts, rng);
  const uint32_t n = opts.num_nodes;
  const uint64_t max_edges =
      static_cast<uint64_t>(n) * (n > 0 ? n - 1 : 0) / 2;
  const uint64_t m = std::min(opts.num_edges, max_edges);

  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(m);
  std::uniform_int_distribution<uint32_t> dist(0, n > 0 ? n - 1 : 0);
  while (edges.size() < m) {
    NodeId u = dist(rng);
    NodeId v = dist(rng);
    if (u == v) continue;
    if (u > v) std::swap(u, v);  // edges go from smaller to larger rank
    if (seen.insert(EdgeKey(u, v)).second) edges.emplace_back(u, v);
  }
  return Graph::FromEdges(std::move(labels), std::move(edges));
}

Graph GenerateLayeredDag(const GeneratorOptions& opts, uint32_t layers,
                         double skip_prob) {
  std::mt19937_64 rng(opts.seed);
  std::vector<LabelId> labels = DrawLabels(opts, rng);
  const uint32_t n = opts.num_nodes;
  layers = std::max<uint32_t>(2, std::min(layers, n));
  const uint32_t per_layer = n / layers;

  auto layer_of = [per_layer, layers](NodeId v) {
    return std::min(v / std::max<uint32_t>(1, per_layer), layers - 1);
  };
  auto layer_range = [per_layer, layers, n](uint32_t layer) {
    uint32_t lo = layer * per_layer;
    uint32_t hi = (layer + 1 == layers) ? n : (layer + 1) * per_layer;
    return std::make_pair(lo, hi);
  };

  std::unordered_set<uint64_t> seen;
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(opts.num_edges);
  std::uniform_int_distribution<uint32_t> src_dist(0, n > 0 ? n - 1 : 0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  uint64_t attempts = 0;
  const uint64_t max_attempts = opts.num_edges * 20 + 1000;
  while (edges.size() < opts.num_edges && attempts < max_attempts) {
    ++attempts;
    NodeId u = src_dist(rng);
    uint32_t lu = layer_of(u);
    if (lu + 1 >= layers) continue;
    uint32_t target_layer = lu + 1;
    if (coin(rng) < skip_prob && lu + 2 < layers) target_layer = lu + 2;
    auto [lo, hi] = layer_range(target_layer);
    if (lo >= hi) continue;
    std::uniform_int_distribution<uint32_t> dst_dist(lo, hi - 1);
    NodeId v = dst_dist(rng);
    if (seen.insert(EdgeKey(u, v)).second) edges.emplace_back(u, v);
  }
  return Graph::FromEdges(std::move(labels), std::move(edges));
}

}  // namespace rigpm
