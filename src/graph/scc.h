#ifndef RIGPM_GRAPH_SCC_H_
#define RIGPM_GRAPH_SCC_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/owned_span.h"

namespace rigpm {

/// Strongly-connected-component condensation of a data graph.
///
/// Reachability on a general digraph reduces to reachability on its
/// condensation DAG: u ≺ v (path with >= 1 edge, Definition 2.2) iff
///   * Comp(u) != Comp(v) and Comp(u) reaches Comp(v) in the DAG, or
///   * Comp(u) == Comp(v) and the component is cyclic (size > 1 or self-loop).
/// Every reachability index in src/reach is built on this structure.
class Condensation {
 public:
  /// Runs Tarjan's algorithm (iterative, safe for large graphs).
  explicit Condensation(const Graph& g);

  uint32_t NumComponents() const { return num_components_; }

  /// Number of data nodes the condensation was computed over.
  uint32_t NumNodes() const { return static_cast<uint32_t>(component_.size()); }

  /// Component of a data node.
  uint32_t Component(NodeId v) const { return component_[v]; }

  /// True iff the component contains a cycle (size > 1 or a self-loop).
  bool IsCyclic(uint32_t comp) const { return cyclic_[comp] != 0; }

  uint32_t ComponentSize(uint32_t comp) const { return comp_size_[comp]; }

  /// Successor components (deduplicated, sorted) in the condensation DAG.
  std::span<const uint32_t> Successors(uint32_t comp) const {
    return {dag_targets_.data() + dag_offsets_[comp],
            dag_targets_.data() + dag_offsets_[comp + 1]};
  }

  /// Components in topological order (sources first).
  std::span<const uint32_t> TopologicalOrder() const { return topo_order_; }

  uint64_t NumDagEdges() const { return dag_targets_.size(); }

  /// Appends a binary image to `sink` (see storage/snapshot.h); restored by
  /// Deserialize without re-running Tarjan.
  void Serialize(ByteSink& sink) const;

  /// Decodes an image written by Serialize. On malformed input `src.ok()`
  /// turns false and an empty condensation is returned.
  static Condensation Deserialize(ByteSource& src);

 private:
  Condensation() = default;  // only Deserialize builds without a graph

  // Owned when built by Tarjan; borrowed views into the snapshot mapping
  // when loaded zero-copy (storage_ keeps the mapping alive).
  uint32_t num_components_ = 0;
  OwnedOrBorrowedSpan<uint32_t> component_;
  OwnedOrBorrowedSpan<uint8_t> cyclic_;
  OwnedOrBorrowedSpan<uint32_t> comp_size_;
  OwnedOrBorrowedSpan<uint64_t> dag_offsets_;
  OwnedOrBorrowedSpan<uint32_t> dag_targets_;
  OwnedOrBorrowedSpan<uint32_t> topo_order_;
  std::shared_ptr<const void> storage_;
};

}  // namespace rigpm

#endif  // RIGPM_GRAPH_SCC_H_
