#ifndef RIGPM_GRAPH_GRAPH_BUILDER_H_
#define RIGPM_GRAPH_GRAPH_BUILDER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace rigpm {

/// Incremental construction of a `Graph`. Not thread-safe.
///
///   GraphBuilder b;
///   NodeId a0 = b.AddNode(/*label=*/0);
///   NodeId b0 = b.AddNode(/*label=*/1);
///   b.AddEdge(a0, b0);
///   Graph g = std::move(b).Build();
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Adds a node with the given label and returns its id (ids are dense and
  /// assigned in insertion order).
  NodeId AddNode(LabelId label);

  /// Adds a directed edge. Both endpoints must already exist.
  void AddEdge(NodeId from, NodeId to);

  uint32_t NumNodes() const { return static_cast<uint32_t>(labels_.size()); }
  uint64_t NumEdges() const { return edges_.size(); }

  /// Finalizes the graph. The builder is consumed.
  Graph Build() &&;

 private:
  std::vector<LabelId> labels_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace rigpm

#endif  // RIGPM_GRAPH_GRAPH_BUILDER_H_
