#include "graph/scc.h"

#include <algorithm>
#include <cassert>

namespace rigpm {

Condensation::Condensation(const Graph& g) {
  const uint32_t n = g.NumNodes();
  std::vector<uint32_t>& component = component_.Mutable();
  component.assign(n, static_cast<uint32_t>(-1));

  // Iterative Tarjan. `index` / `lowlink` per node; explicit DFS stack keeps
  // (node, next-child-offset) frames to avoid recursion on deep graphs.
  constexpr uint32_t kUnvisited = static_cast<uint32_t>(-1);
  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<uint8_t> on_stack(n, 0);
  std::vector<NodeId> scc_stack;
  std::vector<std::pair<NodeId, uint32_t>> dfs_stack;
  uint32_t next_index = 0;
  uint32_t next_comp = 0;  // assigned in reverse topological order

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs_stack.emplace_back(root, 0);
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = 1;
    while (!dfs_stack.empty()) {
      auto& [v, child_pos] = dfs_stack.back();
      auto neighbors = g.OutNeighbors(v);
      if (child_pos < neighbors.size()) {
        NodeId w = neighbors[child_pos++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          scc_stack.push_back(w);
          on_stack[w] = 1;
          dfs_stack.emplace_back(w, 0);
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          // v is the root of an SCC; pop it off the component stack.
          while (true) {
            NodeId w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[w] = 0;
            component[w] = next_comp;
            if (w == v) break;
          }
          ++next_comp;
        }
        NodeId finished = v;
        dfs_stack.pop_back();
        if (!dfs_stack.empty()) {
          NodeId parent = dfs_stack.back().first;
          lowlink[parent] = std::min(lowlink[parent], lowlink[finished]);
        }
      }
    }
  }
  num_components_ = next_comp;

  // Tarjan numbers components in reverse topological order (every successor
  // of a component is finished first). Renumber so that component ids are a
  // topological order: successors get strictly larger ids.
  for (NodeId v = 0; v < n; ++v) {
    component[v] = num_components_ - 1 - component[v];
  }

  std::vector<uint32_t>& comp_size = comp_size_.Mutable();
  std::vector<uint8_t>& cyclic = cyclic_.Mutable();
  comp_size.assign(num_components_, 0);
  cyclic.assign(num_components_, 0);
  for (NodeId v = 0; v < n; ++v) {
    ++comp_size[component[v]];
  }
  for (uint32_t c = 0; c < num_components_; ++c) {
    if (comp_size[c] > 1) cyclic[c] = 1;
  }

  // Cross-component DAG edges (deduplicated); self-loops mark cyclic comps.
  std::vector<std::pair<uint32_t, uint32_t>> dag_edges;
  for (NodeId v = 0; v < n; ++v) {
    uint32_t cv = component[v];
    for (NodeId w : g.OutNeighbors(v)) {
      uint32_t cw = component[w];
      if (cv == cw) {
        if (v == w) cyclic[cv] = 1;
        continue;
      }
      assert(cv < cw);  // topological numbering
      dag_edges.emplace_back(cv, cw);
    }
  }
  std::sort(dag_edges.begin(), dag_edges.end());
  dag_edges.erase(std::unique(dag_edges.begin(), dag_edges.end()),
                  dag_edges.end());

  std::vector<uint64_t>& dag_offsets = dag_offsets_.Mutable();
  std::vector<uint32_t>& dag_targets = dag_targets_.Mutable();
  std::vector<uint32_t>& topo_order = topo_order_.Mutable();
  dag_offsets.assign(num_components_ + 1, 0);
  for (const auto& [c, d] : dag_edges) ++dag_offsets[c + 1];
  for (uint32_t c = 0; c < num_components_; ++c) {
    dag_offsets[c + 1] += dag_offsets[c];
  }
  dag_targets.resize(dag_edges.size());
  std::vector<uint64_t> pos(dag_offsets.begin(), dag_offsets.end() - 1);
  for (const auto& [c, d] : dag_edges) dag_targets[pos[c]++] = d;

  topo_order.resize(num_components_);
  for (uint32_t c = 0; c < num_components_; ++c) topo_order[c] = c;
}

void Condensation::Serialize(ByteSink& sink) const {
  sink.WriteU32(num_components_);
  sink.WriteSpan<uint32_t>(component_);
  sink.WriteSpan<uint8_t>(cyclic_);
  sink.WriteSpan<uint32_t>(comp_size_);
  sink.WriteSpan<uint64_t>(dag_offsets_);
  sink.WriteSpan<uint32_t>(dag_targets_);
  sink.WriteSpan<uint32_t>(topo_order_);
}

Condensation Condensation::Deserialize(ByteSource& src) {
  Condensation c;
  c.storage_ = src.storage();  // keeps a zero-copy mapping alive
  c.num_components_ = src.ReadU32();
  src.ReadSpan(&c.component_);
  src.ReadSpan(&c.cyclic_);
  src.ReadSpan(&c.comp_size_);
  src.ReadSpan(&c.dag_offsets_);
  src.ReadSpan(&c.dag_targets_);
  src.ReadSpan(&c.topo_order_);
  if (!src.ok()) return Condensation();
  const uint32_t nc = c.num_components_;
  if (c.cyclic_.size() != nc || c.comp_size_.size() != nc ||
      c.topo_order_.size() != nc ||
      c.dag_offsets_.size() != static_cast<uint64_t>(nc) + 1 ||
      (nc > 0 && (c.dag_offsets_.front() != 0 ||
                  c.dag_offsets_.back() != c.dag_targets_.size()))) {
    src.Fail("condensation snapshot structure is inconsistent");
    return Condensation();
  }
  for (uint32_t comp : c.component_) {
    if (comp >= nc) {
      src.Fail("condensation snapshot component id out of range");
      return Condensation();
    }
  }
  for (uint32_t i = 0; i + 1 < c.dag_offsets_.size(); ++i) {
    if (c.dag_offsets_[i] > c.dag_offsets_[i + 1]) {
      src.Fail("condensation snapshot offsets are not monotone");
      return Condensation();
    }
  }
  for (uint32_t d : c.dag_targets_) {
    if (d >= nc) {
      src.Fail("condensation snapshot DAG target out of range");
      return Condensation();
    }
  }
  return c;
}

}  // namespace rigpm
