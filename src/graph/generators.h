#ifndef RIGPM_GRAPH_GENERATORS_H_
#define RIGPM_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace rigpm {

/// Parameters shared by all synthetic data-graph generators.
///
/// The generators stand in for the SNAP datasets of Table 2 (which cannot be
/// shipped): they reproduce the *shape* that matters for the paper's
/// experiments — node/edge counts, label alphabet size, degree skew and label
/// frequency skew — so the relative behaviour of GM / JM / TM carries over.
struct GeneratorOptions {
  uint32_t num_nodes = 1000;
  uint64_t num_edges = 5000;
  uint32_t num_labels = 10;
  uint64_t seed = 42;
  /// Zipf exponent for label frequencies. 0 = uniform labels; larger values
  /// concentrate mass on low label ids (like real datasets where a few labels
  /// dominate).
  double label_zipf = 0.0;
};

/// Uniform random directed graph (Erdős–Rényi G(n, m) style). Duplicate
/// edges and self loops are rejected, so the result has exactly
/// min(num_edges, n*(n-1)) edges.
Graph GenerateErdosRenyi(const GeneratorOptions& opts);

/// Skewed directed graph: target endpoints are chosen by preferential
/// attachment, giving a heavy-tailed in-degree distribution like web/social
/// graphs (BerkStan, Google, Epinions). Self loops are allowed to appear
/// with small probability, making the graph cyclic like the real datasets.
Graph GeneratePowerLaw(const GeneratorOptions& opts);

/// Random DAG: edges only go from smaller to larger node rank, so the graph
/// is acyclic (citation-network shape, e.g. DBLP/Amazon-like experiments and
/// the interval-label fast paths).
Graph GenerateRandomDag(const GeneratorOptions& opts);

/// Layered DAG with `layers` ranks; edges connect consecutive ranks with
/// `skip_prob` chance of skipping one rank. Produces deep reachability
/// structure (long paths), stressing edge-to-path matching.
Graph GenerateLayeredDag(const GeneratorOptions& opts, uint32_t layers,
                         double skip_prob = 0.1);

}  // namespace rigpm

#endif  // RIGPM_GRAPH_GENERATORS_H_
