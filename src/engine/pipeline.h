#ifndef RIGPM_ENGINE_PIPELINE_H_
#define RIGPM_ENGINE_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "engine/gm_options.h"
#include "enumerate/mjoin.h"
#include "query/pattern_query.h"
#include "rig/rig.h"
#include "sim/match_sets.h"

namespace rigpm {

class EvalContext;

/// The stages of the GM chain (Sections 3-6), in execution order:
///   Reduce    — transitive reduction of the query (Section 3),
///   Prefilter — seed candidate sets: ms(q) or the Chen/Zeng pre-filter,
///   Simulate  — double simulation refines the seeds into cos(q),
///   BuildRig  — expand cos(q) into RIG edges (Algorithm 4),
///   Order     — search-order selection over RIG statistics (Section 5.2),
///   Enumerate — MJoin, sequential or parallel (Section 5 / Section 6).
enum class PhaseKind : uint8_t {
  kReduce,
  kPrefilter,
  kSimulate,
  kBuildRig,
  kOrder,
  kEnumerate,
};

const char* PhaseKindName(PhaseKind kind);

/// Mutable state threaded through the phase chain — everything one query
/// evaluation reads and writes. A PipelineState is owned by an EvalContext
/// and recycled across queries via Reset(), which clears the logical
/// content of the previous evaluation so one state object (rather than a
/// fresh set of locals per call) carries a worker through a whole batch.
struct PipelineState {
  // --- Inputs, set by Reset().
  const PatternQuery* query = nullptr;
  GmOptions opts;
  OccurrenceSink sink;  // may be null (count only)

  // --- Intermediate artifacts, produced phase by phase. The search order
  // lands directly in result.order_used (Order phase), where Enumerate
  // reads it.
  PatternQuery reduced;              // Reduce
  CandidateSets candidates;          // Prefilter, refined by Simulate
  std::optional<Rig> rig;            // BuildRig

  // --- Output.
  GmResult result;

  /// Set by a phase that proved the final answer (empty-RIG shortcut); the
  /// pipeline stops running further phases.
  bool finished = false;

  /// Prepares the state for evaluating `q`, recycling buffers in place.
  void Reset(const PatternQuery& q, const GmOptions& options,
             OccurrenceSink occurrence_sink);
};

/// One stage of the staged query pipeline. Phases are immutable and shared
/// across threads; all mutable state lives in (EvalContext, PipelineState),
/// so one phase chain can serve any number of concurrent workers.
class Phase {
 public:
  virtual ~Phase() = default;

  virtual PhaseKind kind() const = 0;
  const char* name() const { return PhaseKindName(kind()); }

  /// Advances `state` by one stage. Runs on the thread owning `ctx`.
  virtual void Run(EvalContext& ctx, PipelineState& state) const = 0;
};

std::unique_ptr<Phase> MakePhase(PhaseKind kind);

/// An explicit, inspectable chain of phases — the staged executor behind
/// GmEngine. The pipeline owns no evaluation state: Run() drives the given
/// (context, state) pair through the chain, recording per-phase wall-clock
/// into state.result.phase_timings and honoring state.finished shortcuts.
class QueryPipeline {
 public:
  QueryPipeline() = default;

  /// Reduce -> Prefilter -> Simulate -> BuildRig -> Order -> Enumerate.
  static QueryPipeline StandardChain();

  /// Reduce -> Prefilter -> Simulate -> BuildRig; used by BuildRigOnly and
  /// EXPLAIN, which never enumerate.
  static QueryPipeline MatchingChain();

  QueryPipeline& Append(std::unique_ptr<Phase> phase);
  QueryPipeline& Append(PhaseKind kind) { return Append(MakePhase(kind)); }

  std::span<const std::unique_ptr<Phase>> phases() const { return phases_; }

  void Run(EvalContext& ctx, PipelineState& state) const;

 private:
  std::vector<std::unique_ptr<Phase>> phases_;
};

}  // namespace rigpm

#endif  // RIGPM_ENGINE_PIPELINE_H_
