#ifndef RIGPM_ENGINE_EVAL_CONTEXT_H_
#define RIGPM_ENGINE_EVAL_CONTEXT_H_

#include <cstdint>
#include <string>

#include "engine/pipeline.h"
#include "graph/interval_labels.h"
#include "reach/reachability.h"
#include "sim/match_sets.h"

namespace rigpm {

/// Per-worker evaluation scratch. One EvalContext binds a (graph,
/// reachability index, interval labels) triple — shared, read-only — to the
/// mutable state a single thread reuses across queries: the MatchContext,
/// the owned PipelineState (candidate sets, RIG, result — recycled via
/// Reset() per query), and per-worker serving statistics.
///
/// Threading contract: an EvalContext must only be used by one thread at a
/// time. The shared inputs it references are immutable, so any number of
/// contexts over the same engine may run concurrently — this is exactly how
/// GmEngine::EvaluateBatch serves a batch: one context per worker, many
/// queries per context.
class EvalContext {
 public:
  EvalContext(const Graph& g, const ReachabilityIndex& reach,
              const IntervalLabels* intervals)
      : ctx_(g, reach), intervals_(intervals) {}

  EvalContext(const EvalContext&) = delete;
  EvalContext& operator=(const EvalContext&) = delete;
  EvalContext(EvalContext&&) = default;

  const Graph& graph() const { return ctx_.graph(); }
  const MatchContext& match_context() const { return ctx_; }
  /// DFS interval labels for expansion early termination; may be null.
  const IntervalLabels* intervals() const { return intervals_; }

  /// The recycled pipeline state. Callers Reset() it per query.
  PipelineState& state() { return state_; }

  // --- Per-context serving statistics.
  uint64_t queries_evaluated() const { return queries_evaluated_; }
  uint64_t occurrences_emitted() const { return occurrences_emitted_; }
  void NoteQuery(const GmResult& result);

  /// One-line serving summary ("N queries, M occurrences, X ms matching /
  /// Y ms enumeration") for logs and worker diagnostics.
  std::string Summary() const;

 private:
  MatchContext ctx_;
  const IntervalLabels* intervals_;
  PipelineState state_;
  uint64_t queries_evaluated_ = 0;
  uint64_t occurrences_emitted_ = 0;
  double matching_ms_ = 0.0;
  double enumerate_ms_ = 0.0;
};

}  // namespace rigpm

#endif  // RIGPM_ENGINE_EVAL_CONTEXT_H_
