#include "engine/pipeline.h"

#include <chrono>
#include <utility>

#include "engine/eval_context.h"
#include "enumerate/mjoin_parallel.h"
#include "order/search_order.h"
#include "query/transitive_reduction.h"
#include "rig/rig_builder.h"
#include "sim/prefilter.h"

namespace rigpm {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

RigBuildOptions RigOptionsFrom(const GmOptions& opts) {
  RigBuildOptions rig_opts;
  rig_opts.sim_algorithm = opts.sim_algorithm;
  rig_opts.sim = opts.sim;
  rig_opts.skip_simulation = !opts.use_double_simulation;
  rig_opts.early_termination = opts.early_termination;
  return rig_opts;
}

// --- Transitive reduction of the query (Section 3).
class ReducePhase : public Phase {
 public:
  PhaseKind kind() const override { return PhaseKind::kReduce; }
  void Run(EvalContext&, PipelineState& s) const override {
    auto t0 = Clock::now();
    s.reduced = s.opts.use_transitive_reduction
                    ? QueryTransitiveReduction(*s.query)
                    : *s.query;
    s.result.reduction_ms = MsSince(t0);
    s.result.reduced_query_edges = s.reduced.NumEdges();
  }
};

// --- Seed candidate sets: label match sets, optionally pre-filtered with
// one forward + one backward sweep [11, 63].
class PrefilterPhase : public Phase {
 public:
  PhaseKind kind() const override { return PhaseKind::kPrefilter; }
  void Run(EvalContext& ctx, PipelineState& s) const override {
    auto t0 = Clock::now();
    s.candidates = s.opts.use_prefilter
                       ? PreFilter(ctx.match_context(), s.reduced, s.opts.sim)
                       : InitialMatchSets(ctx.graph(), s.reduced);
    s.result.prefilter_ms = MsSince(t0);
  }
};

// --- Double simulation refines the seeds into the RIG node sets cos(q)
// (Procedure select of Algorithm 4).
class SimulatePhase : public Phase {
 public:
  PhaseKind kind() const override { return PhaseKind::kSimulate; }
  void Run(EvalContext& ctx, PipelineState& s) const override {
    s.candidates =
        SelectRigNodes(ctx.match_context(), s.reduced, std::move(s.candidates),
                       RigOptionsFrom(s.opts), &s.result.rig_stats);
    s.result.rig_select_ms = s.result.rig_stats.select_ms;
  }
};

// --- Node expansion into RIG edges (Procedure expand of Algorithm 4).
class BuildRigPhase : public Phase {
 public:
  PhaseKind kind() const override { return PhaseKind::kBuildRig; }
  void Run(EvalContext& ctx, PipelineState& s) const override {
    s.rig.emplace(ExpandRig(ctx.match_context(), s.reduced,
                            std::move(s.candidates), RigOptionsFrom(s.opts),
                            ctx.intervals(), &s.result.rig_stats));
    s.candidates.clear();
    s.result.rig_expand_ms = s.result.rig_stats.expand_ms;
    s.result.rig_nodes = s.rig->TotalNodes();
    s.result.rig_edges = s.rig->TotalEdges();
    s.result.rig_memory_bytes = s.rig->MemoryBytes();
    if (s.rig->AnyEmpty()) {
      // Empty RIG: the answer is provably empty; skip ordering + enumeration.
      s.result.empty_rig_shortcut = true;
      s.finished = true;
    }
  }
};

// --- Search-order selection over RIG statistics (Section 5.2).
class OrderPhase : public Phase {
 public:
  PhaseKind kind() const override { return PhaseKind::kOrder; }
  void Run(EvalContext&, PipelineState& s) const override {
    auto t0 = Clock::now();
    s.result.order_used = ComputeSearchOrder(s.reduced, *s.rig, s.opts.order,
                                             &s.result.order_stats);
    s.result.order_ms = MsSince(t0);
  }
};

// --- MJoin enumeration (Algorithm 5), sequential or — when the options ask
// for more than one worker — the partitioned parallel MJoin of Section 6.
class EnumeratePhase : public Phase {
 public:
  PhaseKind kind() const override { return PhaseKind::kEnumerate; }
  void Run(EvalContext&, PipelineState& s) const override {
    auto t0 = Clock::now();
    if (s.opts.num_threads == 1) {
      MJoinOptions mopts;
      mopts.limit = s.opts.limit;
      s.result.num_occurrences =
          MJoin(s.reduced, *s.rig, s.result.order_used, s.sink, mopts,
                &s.result.mjoin_stats);
    } else {
      ParallelMJoinOptions popts;
      popts.num_threads = s.opts.num_threads;
      popts.limit = s.opts.limit;
      s.result.num_occurrences =
          MJoinParallel(s.reduced, *s.rig, s.result.order_used, s.sink, popts,
                        &s.result.mjoin_stats);
    }
    s.result.enumerate_ms = MsSince(t0);
    s.result.hit_limit = s.result.num_occurrences >= s.opts.limit;
  }
};

}  // namespace

const char* PhaseKindName(PhaseKind kind) {
  switch (kind) {
    case PhaseKind::kReduce:
      return "Reduce";
    case PhaseKind::kPrefilter:
      return "Prefilter";
    case PhaseKind::kSimulate:
      return "Simulate";
    case PhaseKind::kBuildRig:
      return "BuildRig";
    case PhaseKind::kOrder:
      return "Order";
    case PhaseKind::kEnumerate:
      return "Enumerate";
  }
  return "?";
}

std::unique_ptr<Phase> MakePhase(PhaseKind kind) {
  switch (kind) {
    case PhaseKind::kReduce:
      return std::make_unique<ReducePhase>();
    case PhaseKind::kPrefilter:
      return std::make_unique<PrefilterPhase>();
    case PhaseKind::kSimulate:
      return std::make_unique<SimulatePhase>();
    case PhaseKind::kBuildRig:
      return std::make_unique<BuildRigPhase>();
    case PhaseKind::kOrder:
      return std::make_unique<OrderPhase>();
    case PhaseKind::kEnumerate:
      return std::make_unique<EnumeratePhase>();
  }
  return nullptr;
}

void PipelineState::Reset(const PatternQuery& q, const GmOptions& options,
                          OccurrenceSink occurrence_sink) {
  query = &q;
  opts = options;
  sink = std::move(occurrence_sink);
  // Clear the previous evaluation's artifacts.
  candidates.clear();
  rig.reset();
  result = GmResult();
  finished = false;
}

QueryPipeline QueryPipeline::StandardChain() {
  QueryPipeline p;
  p.Append(PhaseKind::kReduce)
      .Append(PhaseKind::kPrefilter)
      .Append(PhaseKind::kSimulate)
      .Append(PhaseKind::kBuildRig)
      .Append(PhaseKind::kOrder)
      .Append(PhaseKind::kEnumerate);
  return p;
}

QueryPipeline QueryPipeline::MatchingChain() {
  QueryPipeline p;
  p.Append(PhaseKind::kReduce)
      .Append(PhaseKind::kPrefilter)
      .Append(PhaseKind::kSimulate)
      .Append(PhaseKind::kBuildRig);
  return p;
}

QueryPipeline& QueryPipeline::Append(std::unique_ptr<Phase> phase) {
  phases_.push_back(std::move(phase));
  return *this;
}

void QueryPipeline::Run(EvalContext& ctx, PipelineState& state) const {
  state.result.phase_timings.reserve(phases_.size());
  for (const std::unique_ptr<Phase>& phase : phases_) {
    if (state.finished) break;
    auto t0 = Clock::now();
    phase->Run(ctx, state);
    state.result.phase_timings.push_back({phase->name(), MsSince(t0)});
  }
}

}  // namespace rigpm
