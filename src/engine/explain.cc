#include "engine/explain.h"

#include <sstream>

#include "order/search_order.h"
#include "query/pattern_parser.h"
#include "query/transitive_reduction.h"
#include "sim/prefilter.h"

namespace rigpm {

std::string ExplainQuery(const GmEngine& engine, const PatternQuery& query,
                         const GmOptions& opts) {
  std::ostringstream os;
  const Graph& g = engine.graph();
  os << "== EXPLAIN ==\n";
  os << "data graph : " << g.Summary() << '\n';
  os << "query      : " << PatternToString(query) << '\n';

  // --- Transitive reduction.
  PatternQuery reduced =
      opts.use_transitive_reduction ? QueryTransitiveReduction(query) : query;
  if (reduced.NumEdges() != query.NumEdges()) {
    os << "reduction  : removed "
       << (query.NumEdges() - reduced.NumEdges())
       << " transitive reachability edge(s) -> "
       << PatternToString(reduced) << '\n';
  } else {
    os << "reduction  : query is irreducible\n";
  }

  // --- Filtering cascade: ms -> prefilter -> double simulation.
  MatchContext ctx(g, engine.reach());
  CandidateSets ms = InitialMatchSets(g, reduced);
  CandidateSets pre =
      opts.use_prefilter ? PreFilter(ctx, reduced, opts.sim) : ms;
  CandidateSets fb = pre;
  if (opts.use_double_simulation) {
    SimStats sim_stats;
    CandidateSets sim = ComputeDoubleSimulation(ctx, reduced,
                                                opts.sim_algorithm, opts.sim,
                                                &sim_stats);
    for (QueryNodeId v = 0; v < reduced.NumNodes(); ++v) {
      fb[v] = Bitmap::And(sim[v], pre[v]);
    }
    os << "simulation : " << SimAlgorithmName(opts.sim_algorithm) << ", "
       << sim_stats.passes << " pass(es), " << sim_stats.pruned_nodes
       << " candidate(s) pruned\n";
  }
  os << "candidates : node  |ms(q)|  |prefiltered|  |FB(q)|\n";
  for (QueryNodeId v = 0; v < reduced.NumNodes(); ++v) {
    os << "             q" << v << " (label " << reduced.Label(v) << ")  "
       << ms[v].Cardinality() << "  " << pre[v].Cardinality() << "  "
       << fb[v].Cardinality() << '\n';
  }

  // --- RIG.
  GmResult rig_result;
  Rig rig = engine.BuildRigOnly(query, opts, &rig_result);
  os << "RIG        : " << rig.TotalNodes() << " node(s), "
     << rig.TotalEdges() << " edge(s), " << rig.MemoryBytes() << " bytes\n";
  for (QueryEdgeId e = 0; e < reduced.NumEdges(); ++e) {
    const QueryEdge& edge = reduced.Edge(e);
    os << "             cos(q" << edge.from
       << (edge.kind == EdgeKind::kChild ? " -> q" : " => q") << edge.to
       << ") = " << rig.EdgeCount(e) << " pair(s)\n";
  }
  if (rig.AnyEmpty()) {
    os << "result     : answer is provably EMPTY (empty RIG shortcut)\n";
    return os.str();
  }

  // --- Search order.
  OrderStats order_stats;
  std::vector<QueryNodeId> order =
      ComputeSearchOrder(reduced, rig, opts.order, &order_stats);
  os << "order      : " << OrderStrategyName(opts.order) << " [";
  for (size_t i = 0; i < order.size(); ++i) {
    os << (i ? " " : "") << 'q' << order[i];
  }
  os << "]";
  if (order_stats.fell_back_to_jo) os << " (BJ fell back to JO)";
  if (opts.order == OrderStrategy::kBJ) {
    os << " after " << order_stats.plans_considered << " DP expansions";
  }
  os << '\n';
  return os.str();
}

}  // namespace rigpm
