#ifndef RIGPM_ENGINE_GM_OPTIONS_H_
#define RIGPM_ENGINE_GM_OPTIONS_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "enumerate/mjoin.h"
#include "order/search_order.h"
#include "query/pattern_query.h"
#include "rig/rig_builder.h"
#include "sim/match_sets.h"

namespace rigpm {

/// Configuration of one GM evaluation. The defaults reproduce the paper's
/// GM; the named ablations of Section 7.4 are specific flag settings:
///   GM    — defaults (pre-filter + double simulation + reduction),
///   GM-S  — use_prefilter = false,
///   GM-F  — use_double_simulation = false (pre-filter only),
///   GM-NR — use_transitive_reduction = false.
struct GmOptions {
  bool use_transitive_reduction = true;
  bool use_prefilter = true;
  bool use_double_simulation = true;

  SimAlgorithm sim_algorithm = SimAlgorithm::kDagMap;
  /// Simulation tuning; the paper stops after 3 passes.
  SimOptions sim = {.max_passes = 3};

  OrderStrategy order = OrderStrategy::kJO;
  bool early_termination = true;

  /// Enumeration cap (the experiments stop at 1e7 matches).
  uint64_t limit = std::numeric_limits<uint64_t>::max();

  /// Enumeration worker count (the parallel MJoin the paper sketches as
  /// future work in Section 6). 1 = sequential (the default, identical to
  /// the paper's engine); 0 = std::thread::hardware_concurrency(); N > 1 =
  /// that many workers. With more than one worker the occurrence sink is
  /// invoked concurrently and must be thread-safe; occurrence counts are
  /// identical to the sequential run (clamped to `limit`), but the emission
  /// order is unspecified.
  uint32_t num_threads = 1;
};

/// Name/duration pair for one pipeline phase (engine/pipeline.h). The name
/// points at a static string owned by the phase object.
struct PhaseTiming {
  const char* name = "";
  double ms = 0.0;
};

/// Everything one evaluation produces besides the occurrences themselves.
struct GmResult {
  uint64_t num_occurrences = 0;
  bool hit_limit = false;

  // Phase timings (milliseconds). "matching" = reduction + filtering + RIG +
  // ordering; "enumeration" = the MJoin run — the two components the paper's
  // Metrics section reports.
  double reduction_ms = 0.0;
  double prefilter_ms = 0.0;
  double rig_select_ms = 0.0;
  double rig_expand_ms = 0.0;
  double order_ms = 0.0;
  double enumerate_ms = 0.0;
  double MatchingMs() const {
    return reduction_ms + prefilter_ms + rig_select_ms + rig_expand_ms +
           order_ms;
  }
  double TotalMs() const { return MatchingMs() + enumerate_ms; }

  /// Wall-clock per executed pipeline phase, in execution order (one entry
  /// per Phase the QueryPipeline ran; phases skipped by the empty-RIG
  /// shortcut are absent).
  std::vector<PhaseTiming> phase_timings;

  uint64_t rig_nodes = 0;
  uint64_t rig_edges = 0;
  size_t rig_memory_bytes = 0;
  bool empty_rig_shortcut = false;  // answer proven empty before enumeration

  std::vector<QueryNodeId> order_used;
  RigBuildStats rig_stats;
  OrderStats order_stats;
  MJoinStats mjoin_stats;
  uint32_t reduced_query_edges = 0;  // edge count after transitive reduction
};

}  // namespace rigpm

#endif  // RIGPM_ENGINE_GM_OPTIONS_H_
