#include "engine/gm_engine.h"

#include <chrono>

#include "query/transitive_reduction.h"
#include "sim/prefilter.h"

namespace rigpm {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

GmEngine::GmEngine(const Graph& g, ReachKind reach) : graph_(g) {
  auto t0 = Clock::now();
  reach_ = BuildReachabilityIndex(g, reach);
  reach_build_ms_ = MsSince(t0);
  condensation_ = std::make_unique<Condensation>(g);
  intervals_ = std::make_unique<IntervalLabels>(g, *condensation_);
}

Rig GmEngine::BuildRigOnly(const PatternQuery& query, const GmOptions& opts,
                           GmResult* result) const {
  MatchContext ctx(graph_, *reach_);

  // --- Transitive reduction of the query (Section 3).
  auto t0 = Clock::now();
  PatternQuery reduced =
      opts.use_transitive_reduction ? QueryTransitiveReduction(query) : query;
  if (result != nullptr) {
    result->reduction_ms = MsSince(t0);
    result->reduced_query_edges = reduced.NumEdges();
  }

  // --- Optional node pre-filtering [11, 63].
  auto t1 = Clock::now();
  CandidateSets seed;
  if (opts.use_prefilter) {
    seed = PreFilter(ctx, reduced, opts.sim);
  } else {
    seed = InitialMatchSets(graph_, reduced);
  }
  if (result != nullptr) result->prefilter_ms = MsSince(t1);

  // --- RIG construction (select via double simulation + expand).
  RigBuildOptions rig_opts;
  rig_opts.sim_algorithm = opts.sim_algorithm;
  rig_opts.sim = opts.sim;
  rig_opts.skip_simulation = !opts.use_double_simulation;
  rig_opts.early_termination = opts.early_termination;
  RigBuildStats rig_stats;
  Rig rig = BuildRig(ctx, reduced, std::move(seed), rig_opts, intervals_.get(),
                     &rig_stats);
  if (result != nullptr) {
    result->rig_select_ms = rig_stats.select_ms;
    result->rig_expand_ms = rig_stats.expand_ms;
    result->rig_stats = rig_stats;
    result->rig_nodes = rig.TotalNodes();
    result->rig_edges = rig.TotalEdges();
    result->rig_memory_bytes = rig.MemoryBytes();
    result->empty_rig_shortcut = rig.AnyEmpty();
  }
  return rig;
}

GmResult GmEngine::Evaluate(const PatternQuery& query, const GmOptions& opts,
                            const OccurrenceSink& sink) const {
  GmResult result;

  PatternQuery reduced =
      opts.use_transitive_reduction ? QueryTransitiveReduction(query) : query;
  Rig rig = BuildRigOnly(query, opts, &result);

  if (rig.AnyEmpty()) {
    // Empty RIG: the answer is provably empty; skip ordering + enumeration.
    return result;
  }

  auto t0 = Clock::now();
  result.order_used =
      ComputeSearchOrder(reduced, rig, opts.order, &result.order_stats);
  result.order_ms = MsSince(t0);

  auto t1 = Clock::now();
  MJoinOptions mopts;
  mopts.limit = opts.limit;
  result.num_occurrences =
      MJoin(reduced, rig, result.order_used, sink, mopts, &result.mjoin_stats);
  result.enumerate_ms = MsSince(t1);
  result.hit_limit = result.num_occurrences >= opts.limit;
  return result;
}

std::vector<Occurrence> GmEngine::EvaluateCollect(const PatternQuery& query,
                                                  const GmOptions& opts,
                                                  GmResult* result) const {
  std::vector<Occurrence> out;
  GmResult r = Evaluate(query, opts, [&out](const Occurrence& t) {
    out.push_back(t);
    return true;
  });
  if (result != nullptr) *result = std::move(r);
  return out;
}

}  // namespace rigpm
