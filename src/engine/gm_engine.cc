#include "engine/gm_engine.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <utility>

#include "util/concurrency.h"

namespace rigpm {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

GmEngine::GmEngine(const Graph& g, ReachKind reach) : graph_(g) {
  auto t0 = Clock::now();
  reach_ = BuildReachabilityIndex(g, reach);
  reach_build_ms_ = MsSince(t0);
  condensation_ = std::make_unique<Condensation>(g);
  intervals_ = std::make_unique<IntervalLabels>(g, *condensation_);
  pipeline_ = QueryPipeline::StandardChain();
  matching_pipeline_ = QueryPipeline::MatchingChain();
}

GmEngine::GmEngine(const Graph& g, std::unique_ptr<ReachabilityIndex> reach,
                   std::unique_ptr<Condensation> condensation,
                   std::unique_ptr<IntervalLabels> intervals)
    : graph_(g),
      reach_(std::move(reach)),
      condensation_(std::move(condensation)),
      intervals_(std::move(intervals)) {
  pipeline_ = QueryPipeline::StandardChain();
  matching_pipeline_ = QueryPipeline::MatchingChain();
}

GmResult GmEngine::Evaluate(EvalContext& ctx, const PatternQuery& query,
                            const GmOptions& opts,
                            const OccurrenceSink& sink) const {
  PipelineState& state = ctx.state();
  state.Reset(query, opts, sink);
  pipeline_.Run(ctx, state);
  ctx.NoteQuery(state.result);
  // Moving the result out leaves state.result empty-but-valid; the next
  // Reset() reinitializes it.
  return std::move(state.result);
}

GmResult GmEngine::Evaluate(const PatternQuery& query, const GmOptions& opts,
                            const OccurrenceSink& sink) const {
  EvalContext ctx = MakeContext();
  return Evaluate(ctx, query, opts, sink);
}

std::vector<GmResult> GmEngine::EvaluateBatch(
    std::span<const PatternQuery> queries, const GmOptions& opts,
    const BatchOccurrenceSink& sink) const {
  std::vector<GmResult> results(queries.size());
  if (queries.empty()) return results;

  // Inside a batch the parallelism is across queries; each query enumerates
  // sequentially in its worker so per-query results match the sequential
  // engine exactly (including limit clamping).
  GmOptions per_query = opts;
  per_query.num_threads = 1;

  const uint32_t workers = ResolveWorkerCount(opts.num_threads, queries.size());
  auto run_range = [&](EvalContext& ctx, std::atomic<size_t>& next) {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < queries.size();
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      OccurrenceSink query_sink;
      if (sink) {
        query_sink = [&sink, i](const Occurrence& occ) {
          return sink(i, occ);
        };
      }
      results[i] = Evaluate(ctx, queries[i], per_query, query_sink);
    }
  };

  std::atomic<size_t> next{0};
  if (workers <= 1) {
    EvalContext ctx = MakeContext();
    run_range(ctx, next);
    return results;
  }

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (uint32_t t = 0; t < workers; ++t) {
    threads.emplace_back([&] {
      EvalContext ctx = MakeContext();
      run_range(ctx, next);
    });
  }
  for (std::thread& t : threads) t.join();
  return results;
}

std::vector<Occurrence> GmEngine::EvaluateCollect(const PatternQuery& query,
                                                  const GmOptions& opts,
                                                  GmResult* result) const {
  std::vector<Occurrence> out;
  GmResult r;
  if (opts.num_threads == 1) {
    r = Evaluate(query, opts, [&out](const Occurrence& t) {
      out.push_back(t);
      return true;
    });
  } else {
    // Parallel enumeration invokes the sink concurrently.
    std::mutex mu;
    r = Evaluate(query, opts, [&out, &mu](const Occurrence& t) {
      std::lock_guard<std::mutex> lock(mu);
      out.push_back(t);
      return true;
    });
  }
  if (result != nullptr) *result = std::move(r);
  return out;
}

Rig GmEngine::BuildRigOnly(const PatternQuery& query, const GmOptions& opts,
                           GmResult* result) const {
  EvalContext ctx = MakeContext();
  PipelineState& state = ctx.state();
  state.Reset(query, opts, nullptr);
  matching_pipeline_.Run(ctx, state);
  if (result != nullptr) *result = std::move(state.result);
  return std::move(*state.rig);
}

}  // namespace rigpm
