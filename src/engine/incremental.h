#ifndef RIGPM_ENGINE_INCREMENTAL_H_
#define RIGPM_ENGINE_INCREMENTAL_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/gm_engine.h"
#include "storage/delta_log.h"

namespace rigpm {

/// Incremental hybrid-pattern matching on a growing data graph — the
/// "dynamic data graph setting where matches are computed incrementally"
/// the paper names as future work (Section 9).
///
/// `ApplyAndDiff` ingests a batch of new edges and returns exactly the NEW
/// occurrences of the query: Answer(G + ΔE) \ Answer(G). The implementation
/// evaluates on the updated graph with GM but filters the enumeration
/// through an "old-graph oracle": an occurrence is new iff at least one of
/// its query-edge images was not matched in the old graph (a child edge
/// mapping to a Δ edge, or a descendant edge whose path requires Δ). This is
/// delta-correct for any batch, including batches that create new
/// reachability transitively.
///
/// Cost model: a full (but RIG-pruned) re-enumeration per batch, plus one
/// old-graph edge/reachability probe per query edge per result — the
/// natural baseline the paper's future incremental algorithm would be
/// compared against.
///
/// Persistence: attach a DeltaWriter (storage/delta_log.h) and every
/// accepted batch is journaled as one delta record BEFORE it is applied
/// (write-ahead), so `base.snap + graph.delta` always reconstructs the
/// matcher's current graph — the serving tier refreshes from the log
/// instead of re-dumping the whole snapshot.
class IncrementalMatcher {
 public:
  /// Starts from `initial`. The matcher owns its graphs.
  IncrementalMatcher(Graph initial, PatternQuery query,
                     GmOptions options = {});

  const Graph& current_graph() const { return *current_; }
  const PatternQuery& query() const { return query_; }

  /// Occurrences of the query on the current graph (streamed; bounded by
  /// options.limit).
  std::vector<Occurrence> CurrentAnswer() const;

  /// Journals every subsequently accepted batch through `writer` (null
  /// detaches). Write-ahead: ApplyAndDiff appends the deduplicated batch
  /// and only applies it once the record is durable, so a crash can lose
  /// an unapplied record (harmless — replay is idempotent) but never an
  /// applied-but-unjournaled batch. The writer must outlive the matcher or
  /// be detached first.
  void AttachJournal(DeltaWriter* writer) { journal_ = writer; }

  /// Applies the edge batch and returns only the occurrences that the
  /// batch created.
  ///
  /// Error path: every edge must connect nodes that already exist; a batch
  /// naming a node id >= NumNodes() is rejected whole — nullopt, *error
  /// says which edge — and neither the graph nor the journal changes.
  /// (Node insertions are modeled by growing the graph out-of-band and
  /// re-constructing; silently journaling such an edge would poison the
  /// delta log with a record that can never replay against its base.)
  /// A journal append failure is also reported here, again with the batch
  /// left unapplied.
  std::optional<std::vector<Occurrence>> ApplyAndDiff(
      const std::vector<std::pair<NodeId, NodeId>>& new_edges,
      std::string* error = nullptr);

 private:
  PatternQuery query_;
  GmOptions options_;
  std::unique_ptr<Graph> current_;
  std::unique_ptr<GmEngine> engine_;
  DeltaWriter* journal_ = nullptr;  // not owned
};

}  // namespace rigpm

#endif  // RIGPM_ENGINE_INCREMENTAL_H_
