#ifndef RIGPM_ENGINE_INCREMENTAL_H_
#define RIGPM_ENGINE_INCREMENTAL_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/gm_engine.h"
#include "storage/delta_log.h"

namespace rigpm {

/// The exact answer difference one op batch caused:
/// added = Answer(G') \ Answer(G), removed = Answer(G) \ Answer(G').
struct MatchDelta {
  std::vector<Occurrence> added;
  std::vector<Occurrence> removed;
};

/// Incremental hybrid-pattern matching on a mutating data graph — the
/// "dynamic data graph setting where matches are computed incrementally"
/// the paper names as future work (Section 9), extended past growth-only:
/// a batch may mix edge insertions and deletions.
///
/// `ApplyOpsAndDiff` ingests an op batch and returns the exact answer
/// delta. Both directions use an enumeration filtered through the OTHER
/// generation's oracle: an occurrence is newly ADDED iff at least one of
/// its query-edge images was not matched in the old graph (a child edge
/// mapping to an inserted edge, or a descendant edge whose path requires
/// one), and an occurrence is RETRACTED iff it held on the old graph but
/// at least one query-edge image no longer matches on the new one (a
/// deleted edge, or reachability a deletion severed). Monotone batches
/// skip the side they cannot affect: an add-only batch never retracts a
/// match (answers are monotone in the edge set), so the old-graph
/// enumeration is skipped entirely — exactly the PR 5 growth-only cost —
/// and a delete-only batch symmetrically skips the no-new-matches probe.
///
/// Cost model: a full (but RIG-pruned) enumeration per affected side, plus
/// one cross-generation edge/reachability probe per query edge per result
/// — the natural baseline the paper's future incremental algorithm would
/// be compared against.
///
/// Persistence: attach a DeltaWriter (storage/delta_log.h) and every
/// accepted batch is journaled as one delta record BEFORE it is applied
/// (write-ahead), so `base.snap + graph.delta` always reconstructs the
/// matcher's current graph — the serving tier refreshes from the log
/// instead of re-dumping the whole snapshot.
class IncrementalMatcher {
 public:
  /// Starts from `initial`. The matcher owns its graphs.
  IncrementalMatcher(Graph initial, PatternQuery query,
                     GmOptions options = {});

  const Graph& current_graph() const { return *current_; }
  const PatternQuery& query() const { return query_; }

  /// Occurrences of the query on the current graph (streamed; bounded by
  /// options.limit).
  std::vector<Occurrence> CurrentAnswer() const;

  /// Journals every subsequently accepted batch through `writer` (null
  /// detaches). Write-ahead: ApplyOpsAndDiff appends the normalized batch
  /// and only applies it once the record is durable, so a crash can lose
  /// an unapplied record (harmless — replay is idempotent) but never an
  /// applied-but-unjournaled batch. The writer must outlive the matcher or
  /// be detached first.
  void AttachJournal(DeltaWriter* writer) { journal_ = writer; }

  /// Applies the op batch and returns the exact occurrence delta it
  /// caused.
  ///
  /// Error path: every op must connect nodes that already exist; a batch
  /// naming a node id >= NumNodes() is rejected whole — nullopt, *error
  /// says which edge — and neither the graph nor the journal changes.
  /// (Node insertions are modeled by growing the graph out-of-band and
  /// re-constructing; silently journaling such an op would poison the
  /// delta log with a record that can never replay against its base.) A
  /// journal append failure is also reported here, again with the batch
  /// left unapplied — including the version refusal when the attached log
  /// predates delete ops (kDeltaFormatOps).
  std::optional<MatchDelta> ApplyOpsAndDiff(const std::vector<DeltaOp>& ops,
                                            std::string* error = nullptr);

  /// Add-only convenience over ApplyOpsAndDiff: applies the edge batch and
  /// returns only the occurrences it created (the removed side is empty by
  /// monotonicity).
  std::optional<std::vector<Occurrence>> ApplyAndDiff(
      const std::vector<std::pair<NodeId, NodeId>>& new_edges,
      std::string* error = nullptr);

 private:
  PatternQuery query_;
  GmOptions options_;
  std::unique_ptr<Graph> current_;
  std::unique_ptr<GmEngine> engine_;
  DeltaWriter* journal_ = nullptr;  // not owned
};

}  // namespace rigpm

#endif  // RIGPM_ENGINE_INCREMENTAL_H_
