#ifndef RIGPM_ENGINE_INCREMENTAL_H_
#define RIGPM_ENGINE_INCREMENTAL_H_

#include <memory>
#include <utility>
#include <vector>

#include "engine/gm_engine.h"

namespace rigpm {

/// Incremental hybrid-pattern matching on a growing data graph — the
/// "dynamic data graph setting where matches are computed incrementally"
/// the paper names as future work (Section 9).
///
/// `ApplyAndDiff` ingests a batch of new edges and returns exactly the NEW
/// occurrences of the query: Answer(G + ΔE) \ Answer(G). The implementation
/// evaluates on the updated graph with GM but filters the enumeration
/// through an "old-graph oracle": an occurrence is new iff at least one of
/// its query-edge images was not matched in the old graph (a child edge
/// mapping to a Δ edge, or a descendant edge whose path requires Δ). This is
/// delta-correct for any batch, including batches that create new
/// reachability transitively.
///
/// Cost model: a full (but RIG-pruned) re-enumeration per batch, plus one
/// old-graph edge/reachability probe per query edge per result — the
/// natural baseline the paper's future incremental algorithm would be
/// compared against.
class IncrementalMatcher {
 public:
  /// Starts from `initial`. The matcher owns its graphs.
  IncrementalMatcher(Graph initial, PatternQuery query,
                     GmOptions options = {});

  const Graph& current_graph() const { return *current_; }
  const PatternQuery& query() const { return query_; }

  /// Occurrences of the query on the current graph (streamed; bounded by
  /// options.limit).
  std::vector<Occurrence> CurrentAnswer() const;

  /// Applies the edge batch and returns only the occurrences that the batch
  /// created. Both endpoints must already exist (node insertions can be
  /// modeled by growing the graph out-of-band and re-constructing).
  std::vector<Occurrence> ApplyAndDiff(
      const std::vector<std::pair<NodeId, NodeId>>& new_edges);

 private:
  PatternQuery query_;
  GmOptions options_;
  std::unique_ptr<Graph> current_;
  std::unique_ptr<GmEngine> engine_;
};

}  // namespace rigpm

#endif  // RIGPM_ENGINE_INCREMENTAL_H_
