#ifndef RIGPM_ENGINE_GM_ENGINE_H_
#define RIGPM_ENGINE_GM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "engine/eval_context.h"
#include "engine/gm_options.h"
#include "engine/pipeline.h"
#include "enumerate/mjoin.h"
#include "graph/interval_labels.h"
#include "graph/scc.h"
#include "order/search_order.h"
#include "query/pattern_query.h"
#include "reach/reachability.h"
#include "rig/rig_builder.h"

namespace rigpm {

/// Receives occurrences from EvaluateBatch, tagged with the index of the
/// query (into the batch span) that produced them. Invoked concurrently from
/// worker threads; must be thread-safe. Returning false stops the
/// enumeration of THAT query only — other queries in the batch continue.
using BatchOccurrenceSink =
    std::function<bool(size_t query_index, const Occurrence& occurrence)>;

/// The end-to-end GM graph pattern matching engine (Sections 3-6), built as
/// a staged query pipeline: transitive reduction -> (pre-filter) -> double
/// simulation -> RIG -> search order -> MJoin, with each stage an explicit
/// Phase object (engine/pipeline.h). One engine instance amortizes the
/// reachability index and interval labels across many queries on the same
/// data graph; per-thread mutable state lives in EvalContexts, so a single
/// engine serves concurrent queries (Evaluate from several threads, or
/// EvaluateBatch) without locking.
class GmEngine {
 public:
  /// Builds the reachability index (`reach`, default BFL as in the paper)
  /// and the DFS interval labels over `g`. The graph must outlive the
  /// engine.
  explicit GmEngine(const Graph& g, ReachKind reach = ReachKind::kBfl);

  /// Warm start: adopts a pre-built reachability index and derived
  /// structures (typically deserialized from a snapshot,
  /// storage/snapshot.h) instead of rebuilding them from `g`. Index
  /// construction cost drops to zero; reach_build_ms() reports 0.
  GmEngine(const Graph& g, std::unique_ptr<ReachabilityIndex> reach,
           std::unique_ptr<Condensation> condensation,
           std::unique_ptr<IntervalLabels> intervals);

  GmEngine(const GmEngine&) = delete;
  GmEngine& operator=(const GmEngine&) = delete;

  const Graph& graph() const { return graph_; }
  const ReachabilityIndex& reach() const { return *reach_; }
  const IntervalLabels& intervals() const { return *intervals_; }
  double reach_build_ms() const { return reach_build_ms_; }

  /// The shared phase chain queries run through (read-only introspection).
  const QueryPipeline& pipeline() const { return pipeline_; }

  /// Creates a worker context over this engine's shared read-only inputs.
  /// Make one per thread; reuse it across queries.
  EvalContext MakeContext() const {
    return EvalContext(graph_, *reach_, intervals_.get());
  }

  /// Evaluates `query`, streaming every occurrence into `sink` (may be
  /// null to just count). Returns statistics; see GmResult. With
  /// opts.num_threads != 1 the enumeration phase runs the parallel MJoin
  /// and `sink` is invoked concurrently (it must then be thread-safe).
  GmResult Evaluate(const PatternQuery& query, const GmOptions& opts = {},
                    const OccurrenceSink& sink = nullptr) const;

  /// Same, but reusing the caller's per-thread context (its pipeline state
  /// and serving stats). This is the hot-path entry point for serving.
  GmResult Evaluate(EvalContext& ctx, const PatternQuery& query,
                    const GmOptions& opts = {},
                    const OccurrenceSink& sink = nullptr) const;

  /// Evaluates a batch of independent queries concurrently over the shared
  /// reachability index: opts.num_threads workers (0 = hardware, 1 =
  /// sequential), one reusable EvalContext each, pulling queries from the
  /// batch work-queue. Each query's enumeration is sequential inside its
  /// worker, so per-query results are bit-identical to Evaluate() with
  /// num_threads = 1; only the cross-query schedule is concurrent. Returns
  /// one GmResult per query, in input order.
  std::vector<GmResult> EvaluateBatch(
      std::span<const PatternQuery> queries, const GmOptions& opts = {},
      const BatchOccurrenceSink& sink = nullptr) const;

  /// Convenience: materializes (up to opts.limit) occurrences. Safe with
  /// opts.num_threads != 1 (collection is internally synchronized; tuple
  /// order is then unspecified).
  std::vector<Occurrence> EvaluateCollect(const PatternQuery& query,
                                          const GmOptions& opts = {},
                                          GmResult* result = nullptr) const;

  /// Builds the RIG for a query without enumerating (Fig. 13 measurements):
  /// runs the matching chain only.
  Rig BuildRigOnly(const PatternQuery& query, const GmOptions& opts,
                   GmResult* result) const;

 private:
  const Graph& graph_;
  std::unique_ptr<ReachabilityIndex> reach_;
  std::unique_ptr<Condensation> condensation_;
  std::unique_ptr<IntervalLabels> intervals_;
  double reach_build_ms_ = 0.0;
  QueryPipeline pipeline_;           // full chain, shared by all workers
  QueryPipeline matching_pipeline_;  // Reduce..BuildRig, for BuildRigOnly
};

}  // namespace rigpm

#endif  // RIGPM_ENGINE_GM_ENGINE_H_
