#ifndef RIGPM_ENGINE_GM_ENGINE_H_
#define RIGPM_ENGINE_GM_ENGINE_H_

#include <memory>
#include <vector>

#include "enumerate/mjoin.h"
#include "graph/interval_labels.h"
#include "graph/scc.h"
#include "order/search_order.h"
#include "query/pattern_query.h"
#include "reach/reachability.h"
#include "rig/rig_builder.h"

namespace rigpm {

/// Configuration of one GM evaluation. The defaults reproduce the paper's
/// GM; the named ablations of Section 7.4 are specific flag settings:
///   GM    — defaults (pre-filter + double simulation + reduction),
///   GM-S  — use_prefilter = false,
///   GM-F  — use_double_simulation = false (pre-filter only),
///   GM-NR — use_transitive_reduction = false.
struct GmOptions {
  bool use_transitive_reduction = true;
  bool use_prefilter = true;
  bool use_double_simulation = true;

  SimAlgorithm sim_algorithm = SimAlgorithm::kDagMap;
  /// Simulation tuning; the paper stops after 3 passes.
  SimOptions sim = {.max_passes = 3};

  OrderStrategy order = OrderStrategy::kJO;
  bool early_termination = true;

  /// Enumeration cap (the experiments stop at 1e7 matches).
  uint64_t limit = std::numeric_limits<uint64_t>::max();
};

/// Everything one evaluation produces besides the occurrences themselves.
struct GmResult {
  uint64_t num_occurrences = 0;
  bool hit_limit = false;

  // Phase timings (milliseconds). "matching" = reduction + filtering + RIG +
  // ordering; "enumeration" = the MJoin run — the two components the paper's
  // Metrics section reports.
  double reduction_ms = 0.0;
  double prefilter_ms = 0.0;
  double rig_select_ms = 0.0;
  double rig_expand_ms = 0.0;
  double order_ms = 0.0;
  double enumerate_ms = 0.0;
  double MatchingMs() const {
    return reduction_ms + prefilter_ms + rig_select_ms + rig_expand_ms +
           order_ms;
  }
  double TotalMs() const { return MatchingMs() + enumerate_ms; }

  uint64_t rig_nodes = 0;
  uint64_t rig_edges = 0;
  size_t rig_memory_bytes = 0;
  bool empty_rig_shortcut = false;  // answer proven empty before enumeration

  std::vector<QueryNodeId> order_used;
  RigBuildStats rig_stats;
  OrderStats order_stats;
  MJoinStats mjoin_stats;
  uint32_t reduced_query_edges = 0;  // edge count after transitive reduction
};

/// The end-to-end GM graph pattern matching engine (Sections 3-6):
/// transitive reduction -> (pre-filter) -> double simulation -> RIG ->
/// search order -> MJoin. One engine instance amortizes the reachability
/// index and interval labels across many queries on the same data graph.
class GmEngine {
 public:
  /// Builds the reachability index (`reach`, default BFL as in the paper)
  /// and the DFS interval labels over `g`. The graph must outlive the
  /// engine.
  explicit GmEngine(const Graph& g, ReachKind reach = ReachKind::kBfl);

  GmEngine(const GmEngine&) = delete;
  GmEngine& operator=(const GmEngine&) = delete;

  const Graph& graph() const { return graph_; }
  const ReachabilityIndex& reach() const { return *reach_; }
  const IntervalLabels& intervals() const { return *intervals_; }
  double reach_build_ms() const { return reach_build_ms_; }

  /// Evaluates `query`, streaming every occurrence into `sink` (may be
  /// null to just count). Returns statistics; see GmResult.
  GmResult Evaluate(const PatternQuery& query, const GmOptions& opts = {},
                    const OccurrenceSink& sink = nullptr) const;

  /// Convenience: materializes (up to opts.limit) occurrences.
  std::vector<Occurrence> EvaluateCollect(const PatternQuery& query,
                                          const GmOptions& opts = {},
                                          GmResult* result = nullptr) const;

  /// Builds the RIG for a query without enumerating (Fig. 13 measurements).
  Rig BuildRigOnly(const PatternQuery& query, const GmOptions& opts,
                   GmResult* result) const;

 private:
  const Graph& graph_;
  std::unique_ptr<ReachabilityIndex> reach_;
  std::unique_ptr<Condensation> condensation_;
  std::unique_ptr<IntervalLabels> intervals_;
  double reach_build_ms_ = 0.0;
};

}  // namespace rigpm

#endif  // RIGPM_ENGINE_GM_ENGINE_H_
