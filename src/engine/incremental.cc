#include "engine/incremental.h"

#include <algorithm>

namespace rigpm {

IncrementalMatcher::IncrementalMatcher(Graph initial, PatternQuery query,
                                       GmOptions options)
    : query_(std::move(query)), options_(options) {
  current_ = std::make_unique<Graph>(std::move(initial));
  engine_ = std::make_unique<GmEngine>(*current_);
}

std::vector<Occurrence> IncrementalMatcher::CurrentAnswer() const {
  return engine_->EvaluateCollect(query_, options_);
}

std::optional<MatchDelta> IncrementalMatcher::ApplyOpsAndDiff(
    const std::vector<DeltaOp>& ops, std::string* error) {
  // Both endpoints must already exist — reject the whole batch before any
  // state (graph or journal) changes. An out-of-range endpoint is a node
  // insertion in disguise, and a journaled record naming it could never be
  // replayed against the base the log is bound to.
  std::string endpoint_error;
  if (!ValidateOpEndpoints(ops, current_->NumNodes(), &endpoint_error)) {
    if (error != nullptr) {
      *error = endpoint_error + " (insert nodes out-of-band, then "
               "reconstruct)";
    }
    return std::nullopt;
  }

  // Normalize to exactly the ops that change the graph (last-op-wins
  // within the batch, no-ops against the current adjacency dropped), so
  // repeated/overlapping batches cannot grow the rebuild input and the
  // journal records exactly the mutations applied (the same shared
  // definition replay uses, so the two cannot diverge).
  std::vector<DeltaOp> fresh = ops;
  NormalizeDeltaOps(*current_, &fresh);

  // Nothing genuinely changes (a retried or duplicate-only batch): the
  // diff is empty by definition — skip the journal, the graph rebuild, the
  // index rebuild, and the re-enumerations outright.
  if (fresh.empty()) return MatchDelta{};

  bool has_add = false;
  bool has_delete = false;
  for (const DeltaOp& op : fresh) {
    (op.kind == DeltaOpKind::kAdd ? has_add : has_delete) = true;
  }

  // Write-ahead journaling: the record must be durable before the batch is
  // applied. On failure (including the version refusal for delete ops in a
  // pre-ops log) the matcher state is untouched, so the caller can retry.
  if (journal_ != nullptr) {
    if (!journal_->AppendOps(fresh, error)) return std::nullopt;
  }

  // Keep the old graph + reachability as the cross-generation oracle while
  // the other generation's engine enumerates.
  std::unique_ptr<Graph> old_graph = std::move(current_);
  std::unique_ptr<GmEngine> old_engine = std::move(engine_);
  current_ = std::make_unique<Graph>(
      ApplyDeltaOps(*old_graph, fresh, /*already_normalized=*/true));
  engine_ = std::make_unique<GmEngine>(*current_);

  // An occurrence holds on a generation iff every query edge matches
  // there; probing per result keeps the delta exact even when the batch
  // changes reachability only transitively.
  auto matched_in = [&](const Graph& g, const ReachabilityIndex& reach,
                        const Occurrence& t) {
    for (const QueryEdge& e : query_.Edges()) {
      NodeId u = t[e.from];
      NodeId v = t[e.to];
      bool ok = (e.kind == EdgeKind::kChild) ? g.HasEdge(u, v)
                                             : reach.Reaches(u, v);
      if (!ok) return false;
    }
    return true;
  };

  MatchDelta delta;
  // added = enumerate NEW, drop what the old graph already matched. An
  // answer is monotone in the edge set, so a delete-only batch cannot
  // create matches — skip the whole enumeration.
  if (has_add) {
    const Graph& og = *old_graph;
    const ReachabilityIndex& old_reach = old_engine->reach();
    engine_->Evaluate(query_, options_, [&](const Occurrence& t) {
      if (!matched_in(og, old_reach, t)) delta.added.push_back(t);
      return true;
    });
  }
  // removed = enumerate OLD, drop what still matches on the new graph —
  // the retraction pass; symmetrically skipped for add-only batches.
  if (has_delete) {
    const Graph& ng = *current_;
    const ReachabilityIndex& new_reach = engine_->reach();
    old_engine->Evaluate(query_, options_, [&](const Occurrence& t) {
      if (!matched_in(ng, new_reach, t)) delta.removed.push_back(t);
      return true;
    });
  }
  return delta;
}

std::optional<std::vector<Occurrence>> IncrementalMatcher::ApplyAndDiff(
    const std::vector<std::pair<NodeId, NodeId>>& new_edges,
    std::string* error) {
  auto delta = ApplyOpsAndDiff(EdgesToOps(new_edges), error);
  if (!delta.has_value()) return std::nullopt;
  return std::move(delta->added);
}

}  // namespace rigpm
