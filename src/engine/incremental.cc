#include "engine/incremental.h"

#include <algorithm>

namespace rigpm {

IncrementalMatcher::IncrementalMatcher(Graph initial, PatternQuery query,
                                       GmOptions options)
    : query_(std::move(query)), options_(options) {
  current_ = std::make_unique<Graph>(std::move(initial));
  engine_ = std::make_unique<GmEngine>(*current_);
}

std::vector<Occurrence> IncrementalMatcher::CurrentAnswer() const {
  return engine_->EvaluateCollect(query_, options_);
}

std::vector<Occurrence> IncrementalMatcher::ApplyAndDiff(
    const std::vector<std::pair<NodeId, NodeId>>& new_edges) {
  // Keep the old graph + reachability as the "was it already matched"
  // oracle while the new engine enumerates.
  std::unique_ptr<Graph> old_graph = std::move(current_);
  std::unique_ptr<GmEngine> old_engine = std::move(engine_);

  // Rebuild the graph with the extra edges.
  std::vector<LabelId> labels(old_graph->NumNodes());
  for (NodeId v = 0; v < old_graph->NumNodes(); ++v) {
    labels[v] = old_graph->Label(v);
  }
  // Dedupe the batch against itself and against edges already present, so
  // repeated/overlapping batches cannot grow the rebuild input: the graph
  // must not depend on Graph::FromEdges quietly dropping duplicates, and
  // every duplicate fed through would be re-sorted on each batch.
  std::vector<std::pair<NodeId, NodeId>> fresh = new_edges;
  std::sort(fresh.begin(), fresh.end());
  fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
  std::erase_if(fresh, [&](const std::pair<NodeId, NodeId>& e) {
    return old_graph->HasEdge(e.first, e.second);
  });
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(old_graph->NumEdges() + fresh.size());
  for (NodeId v = 0; v < old_graph->NumNodes(); ++v) {
    for (NodeId w : old_graph->OutNeighbors(v)) edges.emplace_back(v, w);
  }
  edges.insert(edges.end(), fresh.begin(), fresh.end());
  current_ = std::make_unique<Graph>(
      Graph::FromEdges(std::move(labels), std::move(edges)));
  engine_ = std::make_unique<GmEngine>(*current_);

  // An occurrence is OLD iff every query edge was already matched in the
  // old graph; checking that per result keeps the delta exact even when the
  // batch creates reachability only transitively.
  const Graph& og = *old_graph;
  const ReachabilityIndex& old_reach = old_engine->reach();
  auto matched_in_old = [&](const Occurrence& t) {
    for (const QueryEdge& e : query_.Edges()) {
      NodeId u = t[e.from];
      NodeId v = t[e.to];
      bool ok = (e.kind == EdgeKind::kChild) ? og.HasEdge(u, v)
                                             : old_reach.Reaches(u, v);
      if (!ok) return false;
    }
    return true;
  };

  std::vector<Occurrence> delta;
  engine_->Evaluate(query_, options_, [&](const Occurrence& t) {
    if (!matched_in_old(t)) delta.push_back(t);
    return true;
  });
  return delta;
}

}  // namespace rigpm
