#include "engine/incremental.h"

#include <algorithm>

namespace rigpm {

IncrementalMatcher::IncrementalMatcher(Graph initial, PatternQuery query,
                                       GmOptions options)
    : query_(std::move(query)), options_(options) {
  current_ = std::make_unique<Graph>(std::move(initial));
  engine_ = std::make_unique<GmEngine>(*current_);
}

std::vector<Occurrence> IncrementalMatcher::CurrentAnswer() const {
  return engine_->EvaluateCollect(query_, options_);
}

std::optional<std::vector<Occurrence>> IncrementalMatcher::ApplyAndDiff(
    const std::vector<std::pair<NodeId, NodeId>>& new_edges,
    std::string* error) {
  // Both endpoints must already exist — reject the whole batch before any
  // state (graph or journal) changes. An out-of-range endpoint is a node
  // insertion in disguise, and a journaled record naming it could never be
  // replayed against the base the log is bound to.
  std::string endpoint_error;
  if (!ValidateEdgeEndpoints(new_edges, current_->NumNodes(),
                             &endpoint_error)) {
    if (error != nullptr) {
      *error = endpoint_error + " (insert nodes out-of-band, then "
               "reconstruct)";
    }
    return std::nullopt;
  }

  // Dedupe the batch against itself and against edges already present, so
  // repeated/overlapping batches cannot grow the rebuild input and the
  // journal records exactly the edges that change the graph (the same
  // shared definition replay uses, so the two cannot diverge).
  std::vector<std::pair<NodeId, NodeId>> fresh = new_edges;
  DedupeNewEdges(*current_, &fresh);

  // Nothing genuinely new (a retried or duplicate-only batch): the diff is
  // empty by definition — skip the journal, the graph rebuild, the index
  // rebuild, and the re-enumeration outright.
  if (fresh.empty()) return std::vector<Occurrence>{};

  // Write-ahead journaling: the record must be durable before the batch is
  // applied. On failure the matcher state is untouched, so the caller can
  // retry the same batch.
  if (journal_ != nullptr) {
    if (!journal_->Append(fresh, error)) return std::nullopt;
  }

  // Keep the old graph + reachability as the "was it already matched"
  // oracle while the new engine enumerates.
  std::unique_ptr<Graph> old_graph = std::move(current_);
  std::unique_ptr<GmEngine> old_engine = std::move(engine_);
  current_ = std::make_unique<Graph>(
      ApplyEdgesToGraph(*old_graph, fresh, /*already_deduplicated=*/true));
  engine_ = std::make_unique<GmEngine>(*current_);

  // An occurrence is OLD iff every query edge was already matched in the
  // old graph; checking that per result keeps the delta exact even when the
  // batch creates reachability only transitively.
  const Graph& og = *old_graph;
  const ReachabilityIndex& old_reach = old_engine->reach();
  auto matched_in_old = [&](const Occurrence& t) {
    for (const QueryEdge& e : query_.Edges()) {
      NodeId u = t[e.from];
      NodeId v = t[e.to];
      bool ok = (e.kind == EdgeKind::kChild) ? og.HasEdge(u, v)
                                             : old_reach.Reaches(u, v);
      if (!ok) return false;
    }
    return true;
  };

  std::vector<Occurrence> delta;
  engine_->Evaluate(query_, options_, [&](const Occurrence& t) {
    if (!matched_in_old(t)) delta.push_back(t);
    return true;
  });
  return delta;
}

}  // namespace rigpm
