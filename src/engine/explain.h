#ifndef RIGPM_ENGINE_EXPLAIN_H_
#define RIGPM_ENGINE_EXPLAIN_H_

#include <string>

#include "engine/gm_engine.h"

namespace rigpm {

/// EXPLAIN-style plan report for a GM evaluation: what the transitive
/// reduction removed, how much each filtering stage pruned, the chosen
/// search order with per-node candidate cardinalities, and the RIG edge
/// statistics. Runs the matching phases (not the enumeration), so it is
/// cheap relative to evaluating the query.
///
/// Intended for interactive debugging of slow queries — the same role
/// EXPLAIN plays in a relational engine.
std::string ExplainQuery(const GmEngine& engine, const PatternQuery& query,
                         const GmOptions& opts = {});

}  // namespace rigpm

#endif  // RIGPM_ENGINE_EXPLAIN_H_
