#include "engine/eval_context.h"

#include <cstdio>

namespace rigpm {

void EvalContext::NoteQuery(const GmResult& result) {
  ++queries_evaluated_;
  occurrences_emitted_ += result.num_occurrences;
  matching_ms_ += result.MatchingMs();
  enumerate_ms_ += result.enumerate_ms;
}

std::string EvalContext::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%llu query(ies), %llu occurrence(s), %.2f ms matching / "
                "%.2f ms enumeration",
                static_cast<unsigned long long>(queries_evaluated_),
                static_cast<unsigned long long>(occurrences_emitted_),
                matching_ms_, enumerate_ms_);
  return buf;
}

}  // namespace rigpm
