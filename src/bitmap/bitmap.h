#ifndef RIGPM_BITMAP_BITMAP_H_
#define RIGPM_BITMAP_BITMAP_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <span>
#include <vector>

#include "util/owned_span.h"
#include "util/serde.h"

namespace rigpm {

/// A roaring-style compressed bitmap over 32-bit unsigned integers.
///
/// The value space is partitioned into 2^16-element chunks keyed by the high
/// 16 bits. Each populated chunk is stored either as a sorted array of the
/// low 16 bits (when sparse, <= kArrayCapacity values) or as a 1024-word
/// bitset (when dense). This is the same container design as RoaringBitmap
/// (Chambi et al., SPE 2016), which the paper uses to store candidate
/// occurrence sets and adjacency lists (Section 6).
///
/// The class provides the operations the RIG framework needs:
///  * point updates and membership,
///  * destructive and non-destructive AND / OR / ANDNOT,
///  * `Intersects` (existence-only AND, with early exit),
///  * multiway AND/OR ("FastAggregation" in the RoaringBitmap API),
///  * batch iteration (`ForEach`, `ToVector`) that decodes container-at-a-
///    time, mirroring the batch iterators the paper found 2-10x faster than
///    per-element iterators.
class Bitmap {
 public:
  /// Maximum number of values an array container holds before it is promoted
  /// to a bitset container.
  static constexpr uint32_t kArrayCapacity = 4096;

  Bitmap() = default;
  Bitmap(std::initializer_list<uint32_t> values);

  Bitmap(const Bitmap&) = default;
  Bitmap& operator=(const Bitmap&) = default;
  Bitmap(Bitmap&&) noexcept = default;
  Bitmap& operator=(Bitmap&&) noexcept = default;

  /// Builds a bitmap from a strictly increasing sequence of values. This is
  /// the fast path used when converting CSR adjacency ranges.
  static Bitmap FromSorted(std::span<const uint32_t> sorted_values);

  /// Builds a bitmap from an arbitrary (possibly duplicated) sequence.
  static Bitmap FromUnsorted(std::span<const uint32_t> values);

  /// Builds the bitmap {0, 1, ..., n - 1}.
  static Bitmap FromRange(uint32_t n);

  void Add(uint32_t value);
  void Remove(uint32_t value);
  bool Contains(uint32_t value) const;

  uint64_t Cardinality() const { return cardinality_; }
  bool Empty() const { return cardinality_ == 0; }
  void Clear();

  /// Smallest element. Precondition: !Empty().
  uint32_t First() const;

  /// True iff the two bitmaps share at least one element. Exits on the first
  /// hit, so this is much cheaper than materializing the intersection.
  bool Intersects(const Bitmap& other) const;

  /// True iff every element of this bitmap is contained in `other`.
  bool IsSubsetOf(const Bitmap& other) const;

  void AndWith(const Bitmap& other);
  void OrWith(const Bitmap& other);
  void AndNotWith(const Bitmap& other);

  static Bitmap And(const Bitmap& a, const Bitmap& b);
  static Bitmap Or(const Bitmap& a, const Bitmap& b);
  static Bitmap AndNot(const Bitmap& a, const Bitmap& b);

  /// Multiway intersection. Inputs are intersected smallest-first so the
  /// running result shrinks as fast as possible; returns empty on empty
  /// input list. Mirrors RoaringBitmap's FastAggregation::and.
  static Bitmap AndMany(std::span<const Bitmap* const> inputs);

  /// Multiway union (pairwise balanced reduction).
  static Bitmap OrMany(std::span<const Bitmap* const> inputs);

  /// Invokes `fn(value)` for every element in increasing order.
  void ForEach(const std::function<void(uint32_t)>& fn) const;

  /// Decodes the whole bitmap into a sorted vector.
  std::vector<uint32_t> ToVector() const;

  bool operator==(const Bitmap& other) const;
  bool operator!=(const Bitmap& other) const { return !(*this == other); }

  /// Appends a binary image to `sink`, container-at-a-time: each array or
  /// bitset container is dumped as a single raw block, so (de)serialization
  /// is memcpy-bound rather than element-at-a-time (the property the
  /// RoaringBitmap design is built for). Read back with Deserialize.
  void Serialize(ByteSink& sink) const;

  /// Decodes an image written by Serialize. On malformed input `src.ok()`
  /// turns false (with a description in `src.error()`) and the returned
  /// bitmap is empty. In zero-copy mode the container payloads borrow from
  /// the source's storage: whoever owns this bitmap must retain
  /// `src.storage()` (Graph and friends do). Mutating a borrowed container
  /// transparently materializes a private copy first; copying a bitmap
  /// always deep-copies.
  static Bitmap Deserialize(ByteSource& src);

  /// Approximate *owned* heap footprint in bytes (used by RIG size
  /// accounting). Borrowed container payloads — views into a shared
  /// snapshot mapping — are accounted to the mapping, not to this bitmap.
  size_t MemoryBytes() const;

  /// Number of internal containers (exposed for tests).
  size_t ContainerCount() const { return containers_.size(); }

 private:
  // A single 2^16-element chunk. `kind` selects which representation is
  // active; the inactive storage is kept empty. The payloads live in
  // OwnedOrBorrowedSpan so a snapshot load can point them straight into the
  // file mapping instead of copying (util/owned_span.h).
  struct Container {
    enum class Kind : uint8_t { kArray, kBitset };

    uint16_t key = 0;
    Kind kind = Kind::kArray;
    uint32_t cardinality = 0;
    OwnedOrBorrowedSpan<uint16_t> array;  // sorted, used when kind == kArray
    OwnedOrBorrowedSpan<uint64_t> words;  // 1024 words, when kind == kBitset

    bool Contains(uint16_t low) const;
    void ToBitset();
    void ToArrayIfSmall();
  };

  // Returns the index of the container with `key`, or containers_.size().
  size_t FindContainer(uint16_t key) const;
  Container& GetOrCreateContainer(uint16_t key);

  static Container AndContainers(const Container& a, const Container& b);
  static Container OrContainers(const Container& a, const Container& b);
  static Container AndNotContainers(const Container& a, const Container& b);
  static bool ContainersIntersect(const Container& a, const Container& b);
  static bool ContainerSubset(const Container& a, const Container& b);

  std::vector<Container> containers_;  // sorted by key
  uint64_t cardinality_ = 0;
};

}  // namespace rigpm

#endif  // RIGPM_BITMAP_BITMAP_H_
