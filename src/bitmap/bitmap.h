#ifndef RIGPM_BITMAP_BITMAP_H_
#define RIGPM_BITMAP_BITMAP_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <span>
#include <vector>

#include "util/owned_span.h"
#include "util/serde.h"

namespace rigpm {

/// Per-kind container census of a bitmap (or a whole section of bitmaps):
/// how many containers of each representation, how many still borrow their
/// encoded payload from a snapshot mapping, and the encoded-vs-expanded
/// byte footprint. `encoded_bytes` is the native payload size (what a v3
/// snapshot stores and what a borrowed container costs in mapped bytes);
/// `expanded_bytes` is what the same data would occupy fully decoded to
/// array/bitset form — the saving lazy decode preserves until a mutating
/// touch. Used by `rigpm_cli snapshot --inspect` and the memory benches.
struct BitmapContainerStats {
  uint64_t array_containers = 0;
  uint64_t bitset_containers = 0;
  uint64_t run_containers = 0;
  uint64_t borrowed_containers = 0;  // payload borrowed from a mapping
  uint64_t encoded_bytes = 0;
  uint64_t expanded_bytes = 0;

  uint64_t TotalContainers() const {
    return array_containers + bitset_containers + run_containers;
  }
  void Accumulate(const BitmapContainerStats& other) {
    array_containers += other.array_containers;
    bitset_containers += other.bitset_containers;
    run_containers += other.run_containers;
    borrowed_containers += other.borrowed_containers;
    encoded_bytes += other.encoded_bytes;
    expanded_bytes += other.expanded_bytes;
  }
};

/// A roaring-style compressed bitmap over 32-bit unsigned integers.
///
/// The value space is partitioned into 2^16-element chunks keyed by the high
/// 16 bits. Each populated chunk is stored in one of three representations,
/// chosen per chunk by byte footprint — the container design of
/// RoaringBitmap (Chambi et al., SPE 2016), which the paper uses to store
/// candidate occurrence sets and adjacency lists (Section 6):
///  * array  — sorted uint16 low bits (sparse, <= kArrayCapacity values,
///             2 bytes/value);
///  * bitset — 1024 64-bit words (dense, fixed 8 KiB);
///  * run    — interleaved (start, length-1) uint16 pairs over maximal
///             consecutive value runs (clustered, 4 bytes/run) — the
///             representation CSR adjacency of generated graphs, label
///             inverted lists of contiguously-labeled nodes, and
///             transitive-closure rows collapse into.
///
/// Representation heuristics:
///  * construction (FromSorted / FromRange / Deserialize) and RunOptimize()
///    pick the smallest encoding per chunk (run only when strictly smaller
///    than both alternatives);
///  * point mutation of an array/bitset keeps its kind (array promotes to
///    bitset past kArrayCapacity, bitset demotes back when it shrinks
///    under it); point mutation of a run container first decompresses it
///    to array/bitset — runs are a build/load-time encoding, not an
///    update-time one;
///  * the binary set operations read every representation natively
///    (container-vs-container kernels for all nine kind pairings) and
///    produce run output only where it falls out for free (run x run);
///    call RunOptimize() to re-compress a bitmap built by many operations.
///
/// Zero-copy snapshots: a bitmap loaded from an mmap'd v3 snapshot keeps
/// its array and run payloads *encoded inside the mapping* — reads operate
/// on the borrowed encoded form directly, and the first mutating touch of a
/// container materializes a private decoded copy (util/owned_span.h). RSS
/// therefore tracks the compressed snapshot size, not the decoded size.
///
/// The class provides the operations the RIG framework needs:
///  * point updates and membership,
///  * destructive and non-destructive AND / OR / ANDNOT,
///  * `Intersects` (existence-only AND, with early exit),
///  * multiway AND/OR ("FastAggregation" in the RoaringBitmap API),
///  * batch iteration (`ForEach`, `ToVector`) that decodes container-at-a-
///    time, mirroring the batch iterators the paper found 2-10x faster than
///    per-element iterators.
class Bitmap {
 public:
  /// Maximum number of values an array container holds before it is promoted
  /// to a bitset container.
  static constexpr uint32_t kArrayCapacity = 4096;

  /// Serialized payload bytes of one run (start + length-1, two uint16s).
  static constexpr uint32_t kBytesPerRun = 4;

  /// Hard structural bound on runs per container (alternating bits); the
  /// encoding heuristics never produce more than 2047 (8 KiB / 4 - 1), but
  /// the deserializer validates against this bound.
  static constexpr uint32_t kMaxRunsPerContainer = 32768;

  Bitmap() = default;
  Bitmap(std::initializer_list<uint32_t> values);

  Bitmap(const Bitmap&) = default;
  Bitmap& operator=(const Bitmap&) = default;
  Bitmap(Bitmap&&) noexcept = default;
  Bitmap& operator=(Bitmap&&) noexcept = default;

  /// Builds a bitmap from a strictly increasing sequence of values, choosing
  /// the best container representation per chunk. This is the fast path used
  /// when converting CSR adjacency ranges.
  static Bitmap FromSorted(std::span<const uint32_t> sorted_values);

  /// Builds a bitmap from an arbitrary (possibly duplicated) sequence.
  static Bitmap FromUnsorted(std::span<const uint32_t> values);

  /// Builds the bitmap {0, 1, ..., n - 1} directly as run containers —
  /// O(n / 2^16) time and memory, not O(n).
  static Bitmap FromRange(uint32_t n);

  void Add(uint32_t value);
  void Remove(uint32_t value);
  bool Contains(uint32_t value) const;

  uint64_t Cardinality() const { return cardinality_; }
  bool Empty() const { return cardinality_ == 0; }
  void Clear();

  /// Smallest element. Precondition: !Empty().
  uint32_t First() const;

  /// True iff the two bitmaps share at least one element. Exits on the first
  /// hit, so this is much cheaper than materializing the intersection.
  bool Intersects(const Bitmap& other) const;

  /// True iff every element of this bitmap is contained in `other`.
  bool IsSubsetOf(const Bitmap& other) const;

  void AndWith(const Bitmap& other);
  void OrWith(const Bitmap& other);
  void AndNotWith(const Bitmap& other);

  static Bitmap And(const Bitmap& a, const Bitmap& b);
  static Bitmap Or(const Bitmap& a, const Bitmap& b);
  static Bitmap AndNot(const Bitmap& a, const Bitmap& b);

  /// Multiway intersection. Inputs are intersected smallest-first so the
  /// running result shrinks as fast as possible; returns empty on empty
  /// input list. Mirrors RoaringBitmap's FastAggregation::and.
  static Bitmap AndMany(std::span<const Bitmap* const> inputs);

  /// Multiway union (pairwise balanced reduction).
  static Bitmap OrMany(std::span<const Bitmap* const> inputs);

  /// Invokes `fn(value)` for every element in increasing order.
  void ForEach(const std::function<void(uint32_t)>& fn) const;

  /// Decodes the whole bitmap into a sorted vector.
  std::vector<uint32_t> ToVector() const;

  bool operator==(const Bitmap& other) const;
  bool operator!=(const Bitmap& other) const { return !(*this == other); }

  /// Re-encodes every container into its smallest representation (run
  /// containers where 4*runs beats both the array and bitset footprint).
  /// Cheap — one scan per container — and idempotent; call after building a
  /// bitmap through many mutations/operations to reclaim memory.
  void RunOptimize();

  /// Appends a binary image to `sink`, container-at-a-time: each container
  /// is dumped as a single raw block in its native encoding, so
  /// (de)serialization is memcpy-bound rather than element-at-a-time (the
  /// property the RoaringBitmap design is built for). Run containers are
  /// emitted natively when `sink.encode_runs()` (snapshot format v3) and
  /// materialized as array/bitset blocks otherwise (v1/v2 images). Read
  /// back with Deserialize.
  void Serialize(ByteSink& sink) const;

  /// Decodes an image written by Serialize. On malformed input `src.ok()`
  /// turns false (with a description in `src.error()`) and the returned
  /// bitmap is empty. In zero-copy mode the container payloads borrow from
  /// the source's storage: whoever owns this bitmap must retain
  /// `src.storage()` (Graph and friends do). Array and run containers stay
  /// in their encoded on-disk form — reads work on that form directly, and
  /// mutating a borrowed container transparently materializes a private
  /// decoded copy first; copying a bitmap always deep-copies (preserving
  /// each container's encoding).
  static Bitmap Deserialize(ByteSource& src);

  /// Approximate *owned* heap footprint in bytes (used by RIG size
  /// accounting and daemon RSS attribution). Borrowed container payloads —
  /// encoded views into a shared snapshot mapping — are accounted to the
  /// mapping, not to this bitmap, so a freshly mmap-loaded bitmap reports
  /// only its container-index overhead.
  size_t MemoryBytes() const;

  /// Number of internal containers (exposed for tests).
  size_t ContainerCount() const { return containers_.size(); }

  /// Accumulates this bitmap's container census into `stats`.
  void AccumulateStats(BitmapContainerStats* stats) const;

 private:
  // A single 2^16-element chunk. `kind` selects which representation is
  // active; the inactive storage is kept empty. The payloads live in
  // OwnedOrBorrowedSpan so a snapshot load can point them straight into the
  // file mapping instead of copying (util/owned_span.h).
  //
  // kArray:  `array` holds `cardinality` sorted low-16-bit values.
  // kBitset: `words` holds 1024 words.
  // kRun:    `array` holds 2 * NumRuns() values, interleaved
  //          (start, length-1) pairs in canonical form: sorted by start,
  //          non-overlapping, non-adjacent (each start > previous end + 1),
  //          every end <= 65535. Canonical form makes span equality
  //          coincide with set equality.
  struct Container {
    enum class Kind : uint8_t { kArray, kBitset, kRun };

    uint16_t key = 0;
    Kind kind = Kind::kArray;
    uint32_t cardinality = 0;
    OwnedOrBorrowedSpan<uint16_t> array;  // kArray values or kRun pairs
    OwnedOrBorrowedSpan<uint64_t> words;  // 1024 words, when kind == kBitset

    bool Contains(uint16_t low) const;

    // Run accessors (kind == kRun). Ends are uint32 so a run ending at
    // 65535 does not wrap.
    size_t NumRuns() const { return array.size() / 2; }
    uint32_t RunStart(size_t i) const { return array[2 * i]; }
    uint32_t RunEnd(size_t i) const {
      return static_cast<uint32_t>(array[2 * i]) + array[2 * i + 1];
    }

    // Representation changes. Decompress() decodes a run container to
    // array/bitset (the mutation path); TryRunEncode() converts to run form
    // when strictly smaller (the RunOptimize path).
    void ToBitset();
    void ToArrayIfSmall();
    void Decompress();
    void TryRunEncode();
  };

  // Returns the index of the container with `key`, or containers_.size().
  size_t FindContainer(uint16_t key) const;
  Container& GetOrCreateContainer(uint16_t key);

  // Builds a container from canonical run pairs, choosing the smallest
  // representation for the result.
  static Container ContainerFromRuns(uint16_t key,
                                     std::vector<uint16_t> run_pairs,
                                     uint32_t cardinality);

  static Container AndContainers(const Container& a, const Container& b);
  static Container OrContainers(const Container& a, const Container& b);
  static Container AndNotContainers(const Container& a, const Container& b);
  static bool ContainersIntersect(const Container& a, const Container& b);
  static bool ContainerSubset(const Container& a, const Container& b);

  std::vector<Container> containers_;  // sorted by key
  uint64_t cardinality_ = 0;
};

}  // namespace rigpm

#endif  // RIGPM_BITMAP_BITMAP_H_
