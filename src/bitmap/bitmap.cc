#include "bitmap/bitmap.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

namespace rigpm {

namespace {

constexpr uint32_t kWordsPerBitset = 1024;  // 1024 * 64 = 65536 bits
constexpr uint32_t kBitsetBytes = kWordsPerBitset * sizeof(uint64_t);

uint16_t HighBits(uint32_t value) { return static_cast<uint16_t>(value >> 16); }
uint16_t LowBits(uint32_t value) {
  return static_cast<uint16_t>(value & 0xFFFF);
}

uint32_t Combine(uint16_t key, uint16_t low) {
  return (static_cast<uint32_t>(key) << 16) | low;
}

// Native payload bytes of the decoded (array-or-bitset) form of `card`
// values: the footprint a run container competes against.
uint64_t DecodedBytes(uint32_t card) {
  return card <= Bitmap::kArrayCapacity ? uint64_t{2} * card : kBitsetBytes;
}

// Invokes fn(word_index, mask) for every 64-bit bitset word overlapped by
// the inclusive run [s, e] (0 <= s <= e <= 65535), with the mask selecting
// exactly the run's bits within that word. The workhorse of every run x
// bitset kernel: runs translate to whole-word operations, so a run
// container interacts with a bitset at memcpy-like speed.
template <typename Fn>
void ForEachRunWord(uint32_t s, uint32_t e, Fn&& fn) {
  uint32_t first = s >> 6;
  uint32_t last = e >> 6;
  uint64_t first_mask = ~uint64_t{0} << (s & 63);
  uint64_t last_mask =
      (e & 63) == 63 ? ~uint64_t{0} : (uint64_t{1} << ((e & 63) + 1)) - 1;
  if (first == last) {
    fn(first, first_mask & last_mask);
    return;
  }
  fn(first, first_mask);
  for (uint32_t w = first + 1; w < last; ++w) fn(w, ~uint64_t{0});
  fn(last, last_mask);
}

// Appends the inclusive run [s, e] to a canonical (start, length-1) pair
// list, merging with the previous run when they overlap or touch. Feeding
// runs in non-decreasing start order yields canonical output.
void AppendRun(std::vector<uint16_t>* pairs, uint32_t s, uint32_t e) {
  if (!pairs->empty()) {
    uint32_t prev_s = (*pairs)[pairs->size() - 2];
    uint32_t prev_e = prev_s + (*pairs)[pairs->size() - 1];
    if (s <= prev_e + 1) {
      if (e > prev_e) (*pairs)[pairs->size() - 1] =
          static_cast<uint16_t>(e - prev_s);
      return;
    }
  }
  pairs->push_back(static_cast<uint16_t>(s));
  pairs->push_back(static_cast<uint16_t>(e - s));
}

uint32_t CardinalityOfPairs(std::span<const uint16_t> pairs) {
  uint32_t card = 0;
  for (size_t i = 1; i < pairs.size(); i += 2) card += pairs[i] + 1u;
  return card;
}

// Number of maximal consecutive runs in a sorted value array.
size_t CountRunsSorted(std::span<const uint16_t> values) {
  size_t runs = values.empty() ? 0 : 1;
  for (size_t i = 1; i < values.size(); ++i) {
    runs += values[i] != static_cast<uint16_t>(values[i - 1] + 1);
  }
  return runs;
}

// Number of maximal consecutive runs in a bitset, counted word-at-a-time:
// a bit starts a run iff it is set and its predecessor bit is not.
size_t CountRunsBitset(std::span<const uint64_t> words) {
  size_t runs = 0;
  uint64_t carry = 0;  // the previous word's top bit
  for (uint64_t word : words) {
    runs += static_cast<size_t>(std::popcount(word & ~((word << 1) | carry)));
    carry = word >> 63;
  }
  return runs;
}

void PairsFromSortedArray(std::span<const uint16_t> values,
                          std::vector<uint16_t>* pairs) {
  size_t i = 0;
  while (i < values.size()) {
    size_t j = i + 1;
    while (j < values.size() &&
           values[j] == static_cast<uint16_t>(values[j - 1] + 1)) {
      ++j;
    }
    pairs->push_back(values[i]);
    pairs->push_back(static_cast<uint16_t>(j - i - 1));
    i = j;
  }
}

void PairsFromBitset(std::span<const uint64_t> words,
                     std::vector<uint16_t>* pairs) {
  for (uint32_t w = 0; w < kWordsPerBitset; ++w) {
    uint64_t word = words[w];
    while (word != 0) {
      uint32_t start = static_cast<uint32_t>(std::countr_zero(word));
      uint32_t len = static_cast<uint32_t>(std::countr_one(word >> start));
      AppendRun(pairs, (w << 6) | start, ((w << 6) | start) + len - 1);
      if (start + len >= 64) break;
      word &= ~(((uint64_t{1} << len) - 1) << start);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Container helpers
// ---------------------------------------------------------------------------

bool Bitmap::Container::Contains(uint16_t low) const {
  switch (kind) {
    case Kind::kArray:
      return std::binary_search(array.begin(), array.end(), low);
    case Kind::kBitset:
      return (words[low >> 6] >> (low & 63)) & 1;
    case Kind::kRun: {
      // Last run whose start is <= low, then a bounds check against its end.
      size_t lo = 0, hi = NumRuns();
      while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (RunStart(mid) <= low) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo > 0 && low <= RunEnd(lo - 1);
    }
  }
  return false;
}

void Bitmap::Container::ToBitset() {
  if (kind == Kind::kBitset) return;
  std::vector<uint64_t> w(kWordsPerBitset, 0);
  if (kind == Kind::kArray) {
    for (uint16_t low : array) {
      w[low >> 6] |= uint64_t{1} << (low & 63);
    }
  } else {
    for (size_t i = 0; i < NumRuns(); ++i) {
      ForEachRunWord(RunStart(i), RunEnd(i),
                     [&w](uint32_t wi, uint64_t mask) { w[wi] |= mask; });
    }
  }
  words.Mutable() = std::move(w);
  array.Reset();
  kind = Kind::kBitset;
}

void Bitmap::Container::ToArrayIfSmall() {
  if (kind == Kind::kArray || cardinality > kArrayCapacity) return;
  std::vector<uint16_t> a;
  a.reserve(cardinality);
  if (kind == Kind::kBitset) {
    for (uint32_t w = 0; w < kWordsPerBitset; ++w) {
      uint64_t word = words[w];
      while (word != 0) {
        int bit = std::countr_zero(word);
        a.push_back(static_cast<uint16_t>((w << 6) | bit));
        word &= word - 1;
      }
    }
  } else {
    for (size_t i = 0; i < NumRuns(); ++i) {
      for (uint32_t v = RunStart(i); v <= RunEnd(i); ++v) {
        a.push_back(static_cast<uint16_t>(v));
      }
    }
  }
  array.Mutable() = std::move(a);
  words.Reset();
  kind = Kind::kArray;
}

void Bitmap::Container::Decompress() {
  if (kind != Kind::kRun) return;
  if (cardinality <= kArrayCapacity) {
    ToArrayIfSmall();
  } else {
    ToBitset();
  }
}

void Bitmap::Container::TryRunEncode() {
  size_t runs;
  switch (kind) {
    case Kind::kRun:
      runs = NumRuns();
      break;
    case Kind::kArray:
      runs = CountRunsSorted(array);
      break;
    default:
      runs = CountRunsBitset(words);
      break;
  }
  if (uint64_t{kBytesPerRun} * runs < DecodedBytes(cardinality)) {
    if (kind == Kind::kRun) return;
    std::vector<uint16_t> pairs;
    pairs.reserve(2 * runs);
    if (kind == Kind::kArray) {
      PairsFromSortedArray(array, &pairs);
    } else {
      PairsFromBitset(words, &pairs);
    }
    array.Mutable() = std::move(pairs);
    words.Reset();
    kind = Kind::kRun;
  } else if (kind == Kind::kRun) {
    Decompress();
  } else if (kind == Kind::kBitset) {
    ToArrayIfSmall();  // demotes only when the array form fits (and is <=)
  }
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Bitmap::Bitmap(std::initializer_list<uint32_t> values) {
  for (uint32_t v : values) Add(v);
}

Bitmap::Container Bitmap::ContainerFromRuns(uint16_t key,
                                            std::vector<uint16_t> run_pairs,
                                            uint32_t cardinality) {
  Container c;
  c.key = key;
  c.cardinality = cardinality;
  if (cardinality == 0) return c;  // empty array container; caller drops it
  uint64_t run_bytes = uint64_t{kBytesPerRun} * (run_pairs.size() / 2);
  if (run_bytes < DecodedBytes(cardinality)) {
    c.kind = Container::Kind::kRun;
    c.array.Mutable() = std::move(run_pairs);
    return c;
  }
  if (cardinality <= kArrayCapacity) {
    std::vector<uint16_t>& arr = c.array.Mutable();
    arr.reserve(cardinality);
    for (size_t i = 0; i < run_pairs.size(); i += 2) {
      uint32_t s = run_pairs[i];
      uint32_t e = s + run_pairs[i + 1];
      for (uint32_t v = s; v <= e; ++v) arr.push_back(static_cast<uint16_t>(v));
    }
    return c;
  }
  c.kind = Container::Kind::kBitset;
  std::vector<uint64_t>& w = c.words.Mutable();
  w.assign(kWordsPerBitset, 0);
  for (size_t i = 0; i < run_pairs.size(); i += 2) {
    uint32_t s = run_pairs[i];
    ForEachRunWord(s, s + run_pairs[i + 1],
                   [&w](uint32_t wi, uint64_t mask) { w[wi] |= mask; });
  }
  return c;
}

Bitmap Bitmap::FromSorted(std::span<const uint32_t> sorted_values) {
  Bitmap result;
  size_t i = 0;
  while (i < sorted_values.size()) {
    uint16_t key = HighBits(sorted_values[i]);
    size_t j = i;
    size_t runs = 1;
    while (j < sorted_values.size() && HighBits(sorted_values[j]) == key) {
      if (j > i) runs += sorted_values[j] != sorted_values[j - 1] + 1;
      ++j;
    }
    Container c;
    c.key = key;
    c.cardinality = static_cast<uint32_t>(j - i);
    if (uint64_t{kBytesPerRun} * runs < DecodedBytes(c.cardinality)) {
      c.kind = Container::Kind::kRun;
      std::vector<uint16_t>& pairs = c.array.Mutable();
      pairs.reserve(2 * runs);
      size_t k = i;
      while (k < j) {
        size_t m = k + 1;
        while (m < j && sorted_values[m] == sorted_values[m - 1] + 1) ++m;
        pairs.push_back(LowBits(sorted_values[k]));
        pairs.push_back(static_cast<uint16_t>(m - k - 1));
        k = m;
      }
    } else if (c.cardinality <= kArrayCapacity) {
      std::vector<uint16_t>& arr = c.array.Mutable();
      arr.reserve(c.cardinality);
      for (size_t k = i; k < j; ++k) arr.push_back(LowBits(sorted_values[k]));
    } else {
      c.kind = Container::Kind::kBitset;
      std::vector<uint64_t>& w = c.words.Mutable();
      w.assign(kWordsPerBitset, 0);
      for (size_t k = i; k < j; ++k) {
        uint16_t low = LowBits(sorted_values[k]);
        w[low >> 6] |= uint64_t{1} << (low & 63);
      }
    }
    result.containers_.push_back(std::move(c));
    result.cardinality_ += j - i;
    i = j;
  }
  return result;
}

Bitmap Bitmap::FromUnsorted(std::span<const uint32_t> values) {
  std::vector<uint32_t> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return FromSorted(sorted);
}

Bitmap Bitmap::FromRange(uint32_t n) {
  Bitmap result;
  uint32_t full_chunks = n >> 16;
  for (uint32_t key = 0; key < full_chunks; ++key) {
    result.containers_.push_back(ContainerFromRuns(
        static_cast<uint16_t>(key), {0, 65535}, 65536));
  }
  uint32_t rem = n & 0xFFFF;
  if (rem > 0) {
    result.containers_.push_back(
        ContainerFromRuns(static_cast<uint16_t>(full_chunks),
                          {0, static_cast<uint16_t>(rem - 1)}, rem));
  }
  result.cardinality_ = n;
  return result;
}

// ---------------------------------------------------------------------------
// Point operations
// ---------------------------------------------------------------------------

size_t Bitmap::FindContainer(uint16_t key) const {
  auto it = std::lower_bound(
      containers_.begin(), containers_.end(), key,
      [](const Container& c, uint16_t k) { return c.key < k; });
  if (it != containers_.end() && it->key == key) {
    return static_cast<size_t>(it - containers_.begin());
  }
  return containers_.size();
}

Bitmap::Container& Bitmap::GetOrCreateContainer(uint16_t key) {
  auto it = std::lower_bound(
      containers_.begin(), containers_.end(), key,
      [](const Container& c, uint16_t k) { return c.key < k; });
  if (it != containers_.end() && it->key == key) return *it;
  Container c;
  c.key = key;
  return *containers_.insert(it, std::move(c));
}

void Bitmap::Add(uint32_t value) {
  Container& c = GetOrCreateContainer(HighBits(value));
  uint16_t low = LowBits(value);
  // A run container is a read-optimized encoding: check membership on the
  // encoded form first (a redundant add must not trigger a decode), then
  // decompress to array/bitset and fall through to the mutable paths. This
  // is also the lazy-decode moment for run containers borrowed from an
  // mmap'd snapshot.
  if (c.kind == Container::Kind::kRun) {
    if (c.Contains(low)) return;
    c.Decompress();
  }
  // Mutable() up front keeps the hot path at a single binary search / word
  // access, as before the span refactor; it is free for owned containers
  // (everything the build path touches) and copies once for borrowed ones.
  if (c.kind == Container::Kind::kArray) {
    std::vector<uint16_t>& arr = c.array.Mutable();
    auto it = std::lower_bound(arr.begin(), arr.end(), low);
    if (it != arr.end() && *it == low) return;
    arr.insert(it, low);
    ++c.cardinality;
    ++cardinality_;
    if (c.cardinality > kArrayCapacity) c.ToBitset();
  } else {
    uint64_t& word = c.words.Mutable()[low >> 6];
    uint64_t mask = uint64_t{1} << (low & 63);
    if (word & mask) return;
    word |= mask;
    ++c.cardinality;
    ++cardinality_;
  }
}

void Bitmap::Remove(uint32_t value) {
  size_t idx = FindContainer(HighBits(value));
  if (idx == containers_.size()) return;
  Container& c = containers_[idx];
  uint16_t low = LowBits(value);
  if (c.kind == Container::Kind::kRun) {
    if (!c.Contains(low)) return;
    c.Decompress();
  }
  if (c.kind == Container::Kind::kArray) {
    std::vector<uint16_t>& arr = c.array.Mutable();
    auto it = std::lower_bound(arr.begin(), arr.end(), low);
    if (it == arr.end() || *it != low) return;
    arr.erase(it);
    --c.cardinality;
    --cardinality_;
  } else {
    uint64_t& word = c.words.Mutable()[low >> 6];
    uint64_t mask = uint64_t{1} << (low & 63);
    if (!(word & mask)) return;
    word &= ~mask;
    --c.cardinality;
    --cardinality_;
    c.ToArrayIfSmall();
  }
  if (c.cardinality == 0) {
    containers_.erase(containers_.begin() + static_cast<ptrdiff_t>(idx));
  }
}

bool Bitmap::Contains(uint32_t value) const {
  size_t idx = FindContainer(HighBits(value));
  if (idx == containers_.size()) return false;
  return containers_[idx].Contains(LowBits(value));
}

void Bitmap::Clear() {
  containers_.clear();
  cardinality_ = 0;
}

uint32_t Bitmap::First() const {
  assert(!Empty());
  const Container& c = containers_.front();
  switch (c.kind) {
    case Container::Kind::kArray:
      return Combine(c.key, c.array.front());
    case Container::Kind::kRun:
      return Combine(c.key, static_cast<uint16_t>(c.RunStart(0)));
    case Container::Kind::kBitset:
      for (uint32_t w = 0; w < kWordsPerBitset; ++w) {
        if (c.words[w] != 0) {
          return Combine(c.key, static_cast<uint16_t>(
                                    (w << 6) | std::countr_zero(c.words[w])));
        }
      }
      break;
  }
  return 0;  // unreachable given cardinality > 0
}

// ---------------------------------------------------------------------------
// Container-level set algebra
// ---------------------------------------------------------------------------

namespace {

// Intersection of two sorted uint16 arrays, linear merge with galloping when
// the sizes are lopsided.
void IntersectArrays(std::span<const uint16_t> a, std::span<const uint16_t> b,
                     std::vector<uint16_t>* out) {
  std::span<const uint16_t> small = a;
  std::span<const uint16_t> big = b;
  if (small.size() > big.size()) std::swap(small, big);
  if (big.size() > 32 * small.size()) {
    // Galloping: binary-search each element of the small side.
    auto begin = big.begin();
    for (uint16_t v : small) {
      begin = std::lower_bound(begin, big.end(), v);
      if (begin == big.end()) break;
      if (*begin == v) out->push_back(v);
    }
    return;
  }
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
}

}  // namespace

Bitmap::Container Bitmap::AndContainers(const Container& a,
                                        const Container& b) {
  Container out;
  out.key = a.key;
  using Kind = Container::Kind;
  if (a.kind == Kind::kArray && b.kind == Kind::kArray) {
    IntersectArrays(a.array, b.array, &out.array.Mutable());
    out.cardinality = static_cast<uint32_t>(out.array.size());
    return out;
  }
  if (a.kind == Kind::kBitset && b.kind == Kind::kBitset) {
    std::vector<uint64_t>& words = out.words.Mutable();
    words.assign(kWordsPerBitset, 0);
    uint32_t card = 0;
    for (uint32_t w = 0; w < kWordsPerBitset; ++w) {
      words[w] = a.words[w] & b.words[w];
      card += static_cast<uint32_t>(std::popcount(words[w]));
    }
    out.cardinality = card;
    out.kind = Kind::kBitset;
    out.ToArrayIfSmall();
    return out;
  }
  if (a.kind == Kind::kRun && b.kind == Kind::kRun) {
    // Interval intersection: canonical inputs yield canonical output (every
    // output gap is inherited from one side's gap).
    std::vector<uint16_t> pairs;
    size_t i = 0, j = 0;
    while (i < a.NumRuns() && j < b.NumRuns()) {
      uint32_t s = std::max(a.RunStart(i), b.RunStart(j));
      uint32_t e = std::min(a.RunEnd(i), b.RunEnd(j));
      if (s <= e) AppendRun(&pairs, s, e);
      if (a.RunEnd(i) < b.RunEnd(j)) {
        ++i;
      } else if (a.RunEnd(i) > b.RunEnd(j)) {
        ++j;
      } else {
        ++i;
        ++j;
      }
    }
    uint32_t card = CardinalityOfPairs(pairs);
    return ContainerFromRuns(a.key, std::move(pairs), card);
  }
  if (a.kind == Kind::kRun || b.kind == Kind::kRun) {
    const Container& run = (a.kind == Kind::kRun) ? a : b;
    const Container& other = (a.kind == Kind::kRun) ? b : a;
    if (other.kind == Kind::kArray) {
      // Monotonic run cursor over the sorted array.
      std::vector<uint16_t>& out_arr = out.array.Mutable();
      size_t j = 0;
      for (uint16_t v : other.array) {
        while (j < run.NumRuns() && run.RunEnd(j) < v) ++j;
        if (j == run.NumRuns()) break;
        if (run.RunStart(j) <= v) out_arr.push_back(v);
      }
      out.cardinality = static_cast<uint32_t>(out_arr.size());
      return out;
    }
    // run x bitset: whole-word masked copies.
    out.kind = Kind::kBitset;
    std::vector<uint64_t>& words = out.words.Mutable();
    words.assign(kWordsPerBitset, 0);
    uint32_t card = 0;
    for (size_t i = 0; i < run.NumRuns(); ++i) {
      ForEachRunWord(run.RunStart(i), run.RunEnd(i),
                     [&](uint32_t w, uint64_t mask) {
                       uint64_t hit = other.words[w] & mask;
                       words[w] |= hit;
                       card += static_cast<uint32_t>(std::popcount(hit));
                     });
    }
    out.cardinality = card;
    out.ToArrayIfSmall();
    return out;
  }
  // array x bitset: probe the bitset with each array element.
  const Container& arr = (a.kind == Kind::kArray) ? a : b;
  const Container& bits = (a.kind == Kind::kArray) ? b : a;
  std::vector<uint16_t>& out_arr = out.array.Mutable();
  out_arr.reserve(arr.array.size());
  for (uint16_t low : arr.array) {
    if ((bits.words[low >> 6] >> (low & 63)) & 1) out_arr.push_back(low);
  }
  out.cardinality = static_cast<uint32_t>(out_arr.size());
  return out;
}

Bitmap::Container Bitmap::OrContainers(const Container& a, const Container& b) {
  Container out;
  out.key = a.key;
  using Kind = Container::Kind;
  if (a.kind == Kind::kArray && b.kind == Kind::kArray) {
    std::vector<uint16_t>& out_arr = out.array.Mutable();
    out_arr.reserve(a.array.size() + b.array.size());
    std::set_union(a.array.begin(), a.array.end(), b.array.begin(),
                   b.array.end(), std::back_inserter(out_arr));
    out.cardinality = static_cast<uint32_t>(out_arr.size());
    if (out.cardinality > kArrayCapacity) out.ToBitset();
    return out;
  }
  if (a.kind != Kind::kBitset && b.kind != Kind::kBitset &&
      (a.kind == Kind::kRun || b.kind == Kind::kRun)) {
    // run x run / run x array: merge both sides as interval streams in start
    // order (an array element is the degenerate run [v, v]); AppendRun
    // coalesces overlap and adjacency.
    std::vector<uint16_t> pairs;
    auto next_start = [](const Container& c, size_t i) {
      return c.kind == Kind::kRun ? c.RunStart(i)
                                  : static_cast<uint32_t>(c.array[i]);
    };
    auto count = [](const Container& c) {
      return c.kind == Kind::kRun ? c.NumRuns() : c.array.size();
    };
    auto emit = [&pairs, &next_start](const Container& c, size_t i) {
      uint32_t s = next_start(c, i);
      AppendRun(&pairs, s, c.kind == Kind::kRun ? c.RunEnd(i) : s);
    };
    size_t i = 0, j = 0;
    while (i < count(a) || j < count(b)) {
      bool take_a = j == count(b) ||
                    (i < count(a) && next_start(a, i) <= next_start(b, j));
      if (take_a) {
        emit(a, i++);
      } else {
        emit(b, j++);
      }
    }
    uint32_t card = CardinalityOfPairs(pairs);
    return ContainerFromRuns(a.key, std::move(pairs), card);
  }
  // At least one bitset: result is a bitset.
  out.kind = Kind::kBitset;
  std::vector<uint64_t>& words = out.words.Mutable();
  words.assign(kWordsPerBitset, 0);
  auto blend = [&words](const Container& c) {
    switch (c.kind) {
      case Kind::kBitset:
        for (uint32_t w = 0; w < kWordsPerBitset; ++w) words[w] |= c.words[w];
        break;
      case Kind::kArray:
        for (uint16_t low : c.array) {
          words[low >> 6] |= uint64_t{1} << (low & 63);
        }
        break;
      case Kind::kRun:
        for (size_t i = 0; i < c.NumRuns(); ++i) {
          ForEachRunWord(c.RunStart(i), c.RunEnd(i),
                         [&words](uint32_t w, uint64_t mask) {
                           words[w] |= mask;
                         });
        }
        break;
    }
  };
  blend(a);
  blend(b);
  uint32_t card = 0;
  for (uint32_t w = 0; w < kWordsPerBitset; ++w) {
    card += static_cast<uint32_t>(std::popcount(words[w]));
  }
  out.cardinality = card;
  return out;
}

Bitmap::Container Bitmap::AndNotContainers(const Container& a,
                                           const Container& b) {
  Container out;
  out.key = a.key;
  using Kind = Container::Kind;
  if (a.kind == Kind::kArray) {
    std::vector<uint16_t>& out_arr = out.array.Mutable();
    out_arr.reserve(a.array.size());
    for (uint16_t low : a.array) {
      if (!b.Contains(low)) out_arr.push_back(low);
    }
    out.cardinality = static_cast<uint32_t>(out_arr.size());
    return out;
  }
  if (a.kind == Kind::kRun) {
    if (b.kind == Kind::kRun) {
      // Interval subtraction: emit the pieces of each a-run not covered by
      // b-runs.
      std::vector<uint16_t> pairs;
      size_t j = 0;
      for (size_t i = 0; i < a.NumRuns(); ++i) {
        uint32_t cur = a.RunStart(i);
        uint32_t e = a.RunEnd(i);
        while (j < b.NumRuns() && b.RunEnd(j) < cur) ++j;
        size_t k = j;  // a long b-run may also cover the next a-run
        while (cur <= e) {
          if (k == b.NumRuns() || b.RunStart(k) > e) {
            AppendRun(&pairs, cur, e);
            break;
          }
          if (b.RunStart(k) > cur) AppendRun(&pairs, cur, b.RunStart(k) - 1);
          if (b.RunEnd(k) >= e) break;
          cur = b.RunEnd(k) + 1;
          ++k;
        }
      }
      uint32_t card = CardinalityOfPairs(pairs);
      return ContainerFromRuns(a.key, std::move(pairs), card);
    }
    if (a.cardinality <= kArrayCapacity) {
      std::vector<uint16_t>& out_arr = out.array.Mutable();
      for (size_t i = 0; i < a.NumRuns(); ++i) {
        for (uint32_t v = a.RunStart(i); v <= a.RunEnd(i); ++v) {
          if (!b.Contains(static_cast<uint16_t>(v))) {
            out_arr.push_back(static_cast<uint16_t>(v));
          }
        }
      }
      out.cardinality = static_cast<uint32_t>(out_arr.size());
      return out;
    }
    // Dense run minus array/bitset: materialize a's bits, then clear below.
    out.kind = Kind::kBitset;
    std::vector<uint64_t>& words = out.words.Mutable();
    words.assign(kWordsPerBitset, 0);
    for (size_t i = 0; i < a.NumRuns(); ++i) {
      ForEachRunWord(a.RunStart(i), a.RunEnd(i),
                     [&words](uint32_t w, uint64_t mask) {
                       words[w] |= mask;
                     });
    }
  } else {
    out.kind = Kind::kBitset;
    out.words = a.words;  // deep copy (a may borrow from a snapshot mapping)
  }
  std::vector<uint64_t>& words = out.words.Mutable();
  switch (b.kind) {
    case Kind::kBitset:
      for (uint32_t w = 0; w < kWordsPerBitset; ++w) words[w] &= ~b.words[w];
      break;
    case Kind::kArray:
      for (uint16_t low : b.array) {
        words[low >> 6] &= ~(uint64_t{1} << (low & 63));
      }
      break;
    case Kind::kRun:
      for (size_t i = 0; i < b.NumRuns(); ++i) {
        ForEachRunWord(b.RunStart(i), b.RunEnd(i),
                       [&words](uint32_t w, uint64_t mask) {
                         words[w] &= ~mask;
                       });
      }
      break;
  }
  uint32_t card = 0;
  for (uint32_t w = 0; w < kWordsPerBitset; ++w) {
    card += static_cast<uint32_t>(std::popcount(words[w]));
  }
  out.cardinality = card;
  out.ToArrayIfSmall();
  return out;
}

bool Bitmap::ContainersIntersect(const Container& a, const Container& b) {
  using Kind = Container::Kind;
  if (a.kind == Kind::kArray && b.kind == Kind::kArray) {
    size_t i = 0, j = 0;
    while (i < a.array.size() && j < b.array.size()) {
      if (a.array[i] < b.array[j]) {
        ++i;
      } else if (a.array[i] > b.array[j]) {
        ++j;
      } else {
        return true;
      }
    }
    return false;
  }
  if (a.kind == Kind::kBitset && b.kind == Kind::kBitset) {
    for (uint32_t w = 0; w < kWordsPerBitset; ++w) {
      if (a.words[w] & b.words[w]) return true;
    }
    return false;
  }
  if (a.kind == Kind::kRun && b.kind == Kind::kRun) {
    size_t i = 0, j = 0;
    while (i < a.NumRuns() && j < b.NumRuns()) {
      if (a.RunEnd(i) < b.RunStart(j)) {
        ++i;
      } else if (b.RunEnd(j) < a.RunStart(i)) {
        ++j;
      } else {
        return true;
      }
    }
    return false;
  }
  if (a.kind == Kind::kRun || b.kind == Kind::kRun) {
    const Container& run = (a.kind == Kind::kRun) ? a : b;
    const Container& other = (a.kind == Kind::kRun) ? b : a;
    if (other.kind == Kind::kArray) {
      size_t j = 0;
      for (uint16_t v : other.array) {
        while (j < run.NumRuns() && run.RunEnd(j) < v) ++j;
        if (j == run.NumRuns()) return false;
        if (run.RunStart(j) <= v) return true;
      }
      return false;
    }
    for (size_t i = 0; i < run.NumRuns(); ++i) {
      bool hit = false;
      ForEachRunWord(run.RunStart(i), run.RunEnd(i),
                     [&](uint32_t w, uint64_t mask) {
                       hit = hit || (other.words[w] & mask) != 0;
                     });
      if (hit) return true;
    }
    return false;
  }
  const Container& arr = (a.kind == Kind::kArray) ? a : b;
  const Container& bits = (a.kind == Kind::kArray) ? b : a;
  for (uint16_t low : arr.array) {
    if ((bits.words[low >> 6] >> (low & 63)) & 1) return true;
  }
  return false;
}

bool Bitmap::ContainerSubset(const Container& a, const Container& b) {
  using Kind = Container::Kind;
  if (a.cardinality > b.cardinality) return false;
  if (a.kind == Kind::kArray) {
    for (uint16_t low : a.array) {
      if (!b.Contains(low)) return false;
    }
    return true;
  }
  if (a.kind == Kind::kRun) {
    if (b.kind == Kind::kRun) {
      // Every a-run must sit inside a single b-run (b is canonical, so a run
      // cannot straddle a gap).
      size_t j = 0;
      for (size_t i = 0; i < a.NumRuns(); ++i) {
        while (j < b.NumRuns() && b.RunEnd(j) < a.RunStart(i)) ++j;
        if (j == b.NumRuns() || b.RunStart(j) > a.RunStart(i) ||
            b.RunEnd(j) < a.RunEnd(i)) {
          return false;
        }
      }
      return true;
    }
    if (b.kind == Kind::kBitset) {
      bool missing = false;
      for (size_t i = 0; i < a.NumRuns() && !missing; ++i) {
        ForEachRunWord(a.RunStart(i), a.RunEnd(i),
                       [&](uint32_t w, uint64_t mask) {
                         missing = missing || (mask & ~b.words[w]) != 0;
                       });
      }
      return !missing;
    }
    for (size_t i = 0; i < a.NumRuns(); ++i) {
      for (uint32_t v = a.RunStart(i); v <= a.RunEnd(i); ++v) {
        if (!b.Contains(static_cast<uint16_t>(v))) return false;
      }
    }
    return true;
  }
  // a is a bitset.
  if (b.kind == Kind::kBitset) {
    for (uint32_t w = 0; w < kWordsPerBitset; ++w) {
      if (a.words[w] & ~b.words[w]) return false;
    }
    return true;
  }
  if (b.kind == Kind::kRun) {
    // Iterate a's set bits with a monotonic cursor over b's runs.
    size_t j = 0;
    for (uint32_t w = 0; w < kWordsPerBitset; ++w) {
      uint64_t word = a.words[w];
      while (word != 0) {
        uint32_t bit = (w << 6) | static_cast<uint32_t>(std::countr_zero(word));
        while (j < b.NumRuns() && b.RunEnd(j) < bit) ++j;
        if (j == b.NumRuns() || b.RunStart(j) > bit) return false;
        word &= word - 1;
      }
    }
    return true;
  }
  // a bitset, b array with b.cardinality >= a.cardinality > kArrayCapacity is
  // impossible (arrays hold <= kArrayCapacity), so a cannot be a subset unless
  // it fits; fall back to an element scan.
  for (uint32_t w = 0; w < kWordsPerBitset; ++w) {
    uint64_t word = a.words[w];
    while (word != 0) {
      int bit = std::countr_zero(word);
      if (!b.Contains(static_cast<uint16_t>((w << 6) | bit))) return false;
      word &= word - 1;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Bitmap-level set algebra
// ---------------------------------------------------------------------------

bool Bitmap::Intersects(const Bitmap& other) const {
  size_t i = 0, j = 0;
  while (i < containers_.size() && j < other.containers_.size()) {
    uint16_t ka = containers_[i].key;
    uint16_t kb = other.containers_[j].key;
    if (ka < kb) {
      ++i;
    } else if (ka > kb) {
      ++j;
    } else {
      if (ContainersIntersect(containers_[i], other.containers_[j])) {
        return true;
      }
      ++i;
      ++j;
    }
  }
  return false;
}

bool Bitmap::IsSubsetOf(const Bitmap& other) const {
  if (cardinality_ > other.cardinality_) return false;
  size_t j = 0;
  for (const Container& c : containers_) {
    while (j < other.containers_.size() && other.containers_[j].key < c.key) {
      ++j;
    }
    if (j == other.containers_.size() || other.containers_[j].key != c.key) {
      return false;
    }
    if (!ContainerSubset(c, other.containers_[j])) return false;
  }
  return true;
}

Bitmap Bitmap::And(const Bitmap& a, const Bitmap& b) {
  Bitmap out;
  size_t i = 0, j = 0;
  while (i < a.containers_.size() && j < b.containers_.size()) {
    uint16_t ka = a.containers_[i].key;
    uint16_t kb = b.containers_[j].key;
    if (ka < kb) {
      ++i;
    } else if (ka > kb) {
      ++j;
    } else {
      Container c = AndContainers(a.containers_[i], b.containers_[j]);
      if (c.cardinality > 0) {
        out.cardinality_ += c.cardinality;
        out.containers_.push_back(std::move(c));
      }
      ++i;
      ++j;
    }
  }
  return out;
}

Bitmap Bitmap::Or(const Bitmap& a, const Bitmap& b) {
  Bitmap out;
  size_t i = 0, j = 0;
  while (i < a.containers_.size() || j < b.containers_.size()) {
    if (j == b.containers_.size() ||
        (i < a.containers_.size() &&
         a.containers_[i].key < b.containers_[j].key)) {
      out.containers_.push_back(a.containers_[i]);
      out.cardinality_ += a.containers_[i].cardinality;
      ++i;
    } else if (i == a.containers_.size() ||
               b.containers_[j].key < a.containers_[i].key) {
      out.containers_.push_back(b.containers_[j]);
      out.cardinality_ += b.containers_[j].cardinality;
      ++j;
    } else {
      Container c = OrContainers(a.containers_[i], b.containers_[j]);
      out.cardinality_ += c.cardinality;
      out.containers_.push_back(std::move(c));
      ++i;
      ++j;
    }
  }
  return out;
}

Bitmap Bitmap::AndNot(const Bitmap& a, const Bitmap& b) {
  Bitmap out;
  size_t j = 0;
  for (const Container& c : a.containers_) {
    while (j < b.containers_.size() && b.containers_[j].key < c.key) ++j;
    if (j < b.containers_.size() && b.containers_[j].key == c.key) {
      Container diff = AndNotContainers(c, b.containers_[j]);
      if (diff.cardinality > 0) {
        out.cardinality_ += diff.cardinality;
        out.containers_.push_back(std::move(diff));
      }
    } else {
      out.containers_.push_back(c);
      out.cardinality_ += c.cardinality;
    }
  }
  return out;
}

void Bitmap::AndWith(const Bitmap& other) { *this = And(*this, other); }
void Bitmap::OrWith(const Bitmap& other) { *this = Or(*this, other); }
void Bitmap::AndNotWith(const Bitmap& other) { *this = AndNot(*this, other); }

Bitmap Bitmap::AndMany(std::span<const Bitmap* const> inputs) {
  if (inputs.empty()) return Bitmap();
  std::vector<const Bitmap*> sorted(inputs.begin(), inputs.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const Bitmap* a, const Bitmap* b) {
              return a->Cardinality() < b->Cardinality();
            });
  Bitmap result = *sorted[0];
  for (size_t i = 1; i < sorted.size() && !result.Empty(); ++i) {
    result.AndWith(*sorted[i]);
  }
  return result;
}

Bitmap Bitmap::OrMany(std::span<const Bitmap* const> inputs) {
  if (inputs.empty()) return Bitmap();
  // Balanced pairwise reduction keeps intermediate results small.
  std::vector<Bitmap> level;
  level.reserve((inputs.size() + 1) / 2);
  for (size_t i = 0; i + 1 < inputs.size(); i += 2) {
    level.push_back(Or(*inputs[i], *inputs[i + 1]));
  }
  if (inputs.size() % 2 == 1) level.push_back(*inputs.back());
  while (level.size() > 1) {
    std::vector<Bitmap> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(Or(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(std::move(level.back()));
    level = std::move(next);
  }
  return std::move(level.front());
}

void Bitmap::RunOptimize() {
  for (Container& c : containers_) c.TryRunEncode();
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

void Bitmap::Serialize(ByteSink& sink) const {
  sink.WriteU32(static_cast<uint32_t>(containers_.size()));
  // Pre-v3 images carry a redundant per-bitmap cardinality word (the sum of
  // the per-container cardinalities, each validated on its own). v3 drops
  // it: across the millions of tiny per-node bitmaps of a CSR graph those 8
  // bytes are several percent of the whole snapshot.
  if (!sink.encode_runs()) sink.WriteU64(cardinality_);
  for (const Container& c : containers_) {
    sink.WriteU16(c.key);
    if (c.kind == Container::Kind::kRun && !sink.encode_runs()) {
      // Pre-v3 image: materialize the run container as the array/bitset
      // block a v1/v2 decoder expects.
      sink.WriteU8(static_cast<uint8_t>(c.cardinality <= kArrayCapacity
                                            ? Container::Kind::kArray
                                            : Container::Kind::kBitset));
      sink.WriteU32(c.cardinality);
      sink.PadTo8();
      Container decoded = c;  // deep copy; c itself stays encoded
      decoded.Decompress();
      if (decoded.kind == Container::Kind::kArray) {
        sink.WriteRaw(decoded.array.data(),
                      decoded.array.size() * sizeof(uint16_t));
      } else {
        sink.WriteRaw(decoded.words.data(),
                      decoded.words.size() * sizeof(uint64_t));
      }
      continue;
    }
    sink.WriteU8(static_cast<uint8_t>(c.kind));
    sink.WriteU32(c.cardinality);
    if (c.kind == Container::Kind::kRun) {
      sink.WriteU16(static_cast<uint16_t>(c.NumRuns()));
    }
    // Padding before each payload block lets the zero-copy loader borrow a
    // correctly aligned typed pointer straight into the snapshot mapping
    // (format v2; a v1 sink emits nothing here).
    sink.PadTo8();
    if (c.kind == Container::Kind::kBitset) {
      sink.WriteRaw(c.words.data(), c.words.size() * sizeof(uint64_t));
    } else {
      sink.WriteRaw(c.array.data(), c.array.size() * sizeof(uint16_t));
    }
  }
}

Bitmap Bitmap::Deserialize(ByteSource& src) {
  Bitmap out;
  uint32_t num_containers = src.ReadU32();
  // The pre-v3 layout has a redundant total-cardinality word here; the v3
  // layout does not (the run_containers_allowed flag doubles as the layout
  // switch — SnapshotReader sets it from the file header version).
  const bool pre_v3 = !src.run_containers_allowed();
  uint64_t total = pre_v3 ? src.ReadU64() : 0;
  if (!src.ok()) return Bitmap();
  out.containers_.reserve(num_containers);
  uint64_t seen = 0;
  for (uint32_t i = 0; i < num_containers; ++i) {
    // One fused read of the 7-byte container header (u16 key, u8 kind,
    // u32 cardinality) — this loop runs once per container across millions
    // of bitmaps on a big graph load.
    uint8_t hdr[7];
    if (!src.ReadRaw(hdr, sizeof(hdr))) return Bitmap();
    Container c;
    c.key = static_cast<uint16_t>(hdr[0] | (hdr[1] << 8));
    uint8_t kind = hdr[2];
    std::memcpy(&c.cardinality, hdr + 3, sizeof(uint32_t));
    if (!out.containers_.empty() && c.key <= out.containers_.back().key) {
      src.Fail("bitmap containers out of order");
      return Bitmap();
    }
    if (c.cardinality == 0 || c.cardinality > 65536) {
      src.Fail("bitmap container cardinality out of range");
      return Bitmap();
    }
    if (kind == static_cast<uint8_t>(Container::Kind::kArray)) {
      if (c.cardinality > kArrayCapacity) {
        src.Fail("bitmap array container too large");
        return Bitmap();
      }
      c.kind = Container::Kind::kArray;
      src.ReadBlock(c.cardinality, &c.array);
    } else if (kind == static_cast<uint8_t>(Container::Kind::kBitset)) {
      c.kind = Container::Kind::kBitset;
      src.ReadBlock(kWordsPerBitset, &c.words);
      if (!src.ok()) return Bitmap();
      uint32_t card = 0;
      for (uint64_t w : c.words) {
        card += static_cast<uint32_t>(std::popcount(w));
      }
      if (card != c.cardinality) {
        src.Fail("bitmap bitset cardinality mismatch");
        return Bitmap();
      }
    } else if (kind == static_cast<uint8_t>(Container::Kind::kRun)) {
      if (!src.run_containers_allowed()) {
        src.Fail("run container in pre-v3 snapshot");
        return Bitmap();
      }
      c.kind = Container::Kind::kRun;
      uint16_t num_runs = src.ReadU16();
      if (num_runs == 0 || num_runs > kMaxRunsPerContainer) {
        src.Fail("bitmap run container run count out of range");
        return Bitmap();
      }
      src.ReadBlock(size_t{2} * num_runs, &c.array);
      if (!src.ok()) return Bitmap();
      // Validate canonical form so every downstream kernel can trust it:
      // strictly ascending, non-adjacent runs that stay within the chunk
      // and sum to the declared cardinality. A borrowed (mmap'd) payload is
      // validated in place without decoding.
      uint64_t run_card = 0;
      int64_t prev_end = -2;
      for (size_t r = 0; r < c.NumRuns(); ++r) {
        uint32_t s = c.RunStart(r);
        uint32_t e = c.RunEnd(r);
        if (static_cast<int64_t>(s) <= prev_end + 1 || e > 65535) {
          src.Fail("bitmap run container not canonical");
          return Bitmap();
        }
        run_card += e - s + 1;
        prev_end = e;
      }
      if (run_card != c.cardinality) {
        src.Fail("bitmap run container cardinality mismatch");
        return Bitmap();
      }
    } else {
      src.Fail("unknown bitmap container kind");
      return Bitmap();
    }
    if (!src.ok()) return Bitmap();
    seen += c.cardinality;
    out.containers_.push_back(std::move(c));
  }
  if (pre_v3 && seen != total) {
    src.Fail("bitmap cardinality mismatch");
    return Bitmap();
  }
  out.cardinality_ = seen;
  return out;
}

// ---------------------------------------------------------------------------
// Iteration and comparison
// ---------------------------------------------------------------------------

void Bitmap::ForEach(const std::function<void(uint32_t)>& fn) const {
  for (const Container& c : containers_) {
    switch (c.kind) {
      case Container::Kind::kArray:
        for (uint16_t low : c.array) fn(Combine(c.key, low));
        break;
      case Container::Kind::kRun:
        for (size_t i = 0; i < c.NumRuns(); ++i) {
          for (uint32_t v = c.RunStart(i); v <= c.RunEnd(i); ++v) {
            fn(Combine(c.key, static_cast<uint16_t>(v)));
          }
        }
        break;
      case Container::Kind::kBitset:
        for (uint32_t w = 0; w < kWordsPerBitset; ++w) {
          uint64_t word = c.words[w];
          while (word != 0) {
            int bit = std::countr_zero(word);
            fn(Combine(c.key, static_cast<uint16_t>((w << 6) | bit)));
            word &= word - 1;
          }
        }
        break;
    }
  }
}

std::vector<uint32_t> Bitmap::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(cardinality_);
  ForEach([&out](uint32_t v) { out.push_back(v); });
  return out;
}

bool Bitmap::operator==(const Bitmap& other) const {
  if (cardinality_ != other.cardinality_) return false;
  if (containers_.size() != other.containers_.size()) return false;
  for (size_t i = 0; i < containers_.size(); ++i) {
    const Container& a = containers_[i];
    const Container& b = other.containers_[i];
    if (a.key != b.key || a.cardinality != b.cardinality) return false;
    if (a.kind == b.kind) {
      // Arrays are sorted and runs canonical, so payload equality is set
      // equality for both span-backed kinds.
      if (a.kind == Container::Kind::kBitset) {
        if (a.words != b.words) return false;
      } else {
        if (a.array != b.array) return false;
      }
    } else {
      if (!ContainerSubset(a, b)) return false;  // same cardinality => equal
    }
  }
  return true;
}

size_t Bitmap::MemoryBytes() const {
  size_t bytes = sizeof(Bitmap) + containers_.capacity() * sizeof(Container);
  for (const Container& c : containers_) {
    bytes += c.array.OwnedHeapBytes();
    bytes += c.words.OwnedHeapBytes();
  }
  return bytes;
}

void Bitmap::AccumulateStats(BitmapContainerStats* stats) const {
  for (const Container& c : containers_) {
    uint64_t encoded = 0;
    bool borrowed = false;
    switch (c.kind) {
      case Container::Kind::kArray:
        ++stats->array_containers;
        encoded = uint64_t{2} * c.cardinality;
        borrowed = c.array.borrowed();
        break;
      case Container::Kind::kBitset:
        ++stats->bitset_containers;
        encoded = kBitsetBytes;
        borrowed = c.words.borrowed();
        break;
      case Container::Kind::kRun:
        ++stats->run_containers;
        encoded = uint64_t{kBytesPerRun} * c.NumRuns();
        borrowed = c.array.borrowed();
        break;
    }
    if (borrowed) ++stats->borrowed_containers;
    stats->encoded_bytes += encoded;
    stats->expanded_bytes += DecodedBytes(c.cardinality);
  }
}

}  // namespace rigpm
