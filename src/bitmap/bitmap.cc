#include "bitmap/bitmap.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

namespace rigpm {

namespace {

constexpr uint32_t kWordsPerBitset = 1024;  // 1024 * 64 = 65536 bits

uint16_t HighBits(uint32_t value) { return static_cast<uint16_t>(value >> 16); }
uint16_t LowBits(uint32_t value) {
  return static_cast<uint16_t>(value & 0xFFFF);
}

uint32_t Combine(uint16_t key, uint16_t low) {
  return (static_cast<uint32_t>(key) << 16) | low;
}

}  // namespace

// ---------------------------------------------------------------------------
// Container helpers
// ---------------------------------------------------------------------------

bool Bitmap::Container::Contains(uint16_t low) const {
  if (kind == Kind::kArray) {
    return std::binary_search(array.begin(), array.end(), low);
  }
  return (words[low >> 6] >> (low & 63)) & 1;
}

void Bitmap::Container::ToBitset() {
  if (kind == Kind::kBitset) return;
  std::vector<uint64_t>& w = words.Mutable();
  w.assign(kWordsPerBitset, 0);
  for (uint16_t low : array) {
    w[low >> 6] |= uint64_t{1} << (low & 63);
  }
  array.Reset();
  kind = Kind::kBitset;
}

void Bitmap::Container::ToArrayIfSmall() {
  if (kind == Kind::kArray || cardinality > kArrayCapacity) return;
  std::vector<uint16_t>& a = array.Mutable();
  a.clear();
  a.reserve(cardinality);
  for (uint32_t w = 0; w < kWordsPerBitset; ++w) {
    uint64_t word = words[w];
    while (word != 0) {
      int bit = std::countr_zero(word);
      a.push_back(static_cast<uint16_t>((w << 6) | bit));
      word &= word - 1;
    }
  }
  words.Reset();
  kind = Kind::kArray;
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Bitmap::Bitmap(std::initializer_list<uint32_t> values) {
  for (uint32_t v : values) Add(v);
}

Bitmap Bitmap::FromSorted(std::span<const uint32_t> sorted_values) {
  Bitmap result;
  size_t i = 0;
  while (i < sorted_values.size()) {
    uint16_t key = HighBits(sorted_values[i]);
    size_t j = i;
    while (j < sorted_values.size() && HighBits(sorted_values[j]) == key) ++j;
    Container c;
    c.key = key;
    c.cardinality = static_cast<uint32_t>(j - i);
    if (c.cardinality <= kArrayCapacity) {
      c.kind = Container::Kind::kArray;
      std::vector<uint16_t>& arr = c.array.Mutable();
      arr.reserve(c.cardinality);
      for (size_t k = i; k < j; ++k) arr.push_back(LowBits(sorted_values[k]));
    } else {
      c.kind = Container::Kind::kBitset;
      std::vector<uint64_t>& w = c.words.Mutable();
      w.assign(kWordsPerBitset, 0);
      for (size_t k = i; k < j; ++k) {
        uint16_t low = LowBits(sorted_values[k]);
        w[low >> 6] |= uint64_t{1} << (low & 63);
      }
    }
    result.containers_.push_back(std::move(c));
    result.cardinality_ += j - i;
    i = j;
  }
  return result;
}

Bitmap Bitmap::FromUnsorted(std::span<const uint32_t> values) {
  std::vector<uint32_t> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return FromSorted(sorted);
}

Bitmap Bitmap::FromRange(uint32_t n) {
  std::vector<uint32_t> values(n);
  for (uint32_t i = 0; i < n; ++i) values[i] = i;
  return FromSorted(values);
}

// ---------------------------------------------------------------------------
// Point operations
// ---------------------------------------------------------------------------

size_t Bitmap::FindContainer(uint16_t key) const {
  auto it = std::lower_bound(
      containers_.begin(), containers_.end(), key,
      [](const Container& c, uint16_t k) { return c.key < k; });
  if (it != containers_.end() && it->key == key) {
    return static_cast<size_t>(it - containers_.begin());
  }
  return containers_.size();
}

Bitmap::Container& Bitmap::GetOrCreateContainer(uint16_t key) {
  auto it = std::lower_bound(
      containers_.begin(), containers_.end(), key,
      [](const Container& c, uint16_t k) { return c.key < k; });
  if (it != containers_.end() && it->key == key) return *it;
  Container c;
  c.key = key;
  return *containers_.insert(it, std::move(c));
}

void Bitmap::Add(uint32_t value) {
  Container& c = GetOrCreateContainer(HighBits(value));
  uint16_t low = LowBits(value);
  // Mutable() up front keeps the hot path at a single binary search / word
  // access, as before the span refactor; it is free for owned containers
  // (everything the build path touches) and copies once for borrowed ones.
  if (c.kind == Container::Kind::kArray) {
    std::vector<uint16_t>& arr = c.array.Mutable();
    auto it = std::lower_bound(arr.begin(), arr.end(), low);
    if (it != arr.end() && *it == low) return;
    arr.insert(it, low);
    ++c.cardinality;
    ++cardinality_;
    if (c.cardinality > kArrayCapacity) c.ToBitset();
  } else {
    uint64_t& word = c.words.Mutable()[low >> 6];
    uint64_t mask = uint64_t{1} << (low & 63);
    if (word & mask) return;
    word |= mask;
    ++c.cardinality;
    ++cardinality_;
  }
}

void Bitmap::Remove(uint32_t value) {
  size_t idx = FindContainer(HighBits(value));
  if (idx == containers_.size()) return;
  Container& c = containers_[idx];
  uint16_t low = LowBits(value);
  if (c.kind == Container::Kind::kArray) {
    std::vector<uint16_t>& arr = c.array.Mutable();
    auto it = std::lower_bound(arr.begin(), arr.end(), low);
    if (it == arr.end() || *it != low) return;
    arr.erase(it);
    --c.cardinality;
    --cardinality_;
  } else {
    uint64_t& word = c.words.Mutable()[low >> 6];
    uint64_t mask = uint64_t{1} << (low & 63);
    if (!(word & mask)) return;
    word &= ~mask;
    --c.cardinality;
    --cardinality_;
    c.ToArrayIfSmall();
  }
  if (c.cardinality == 0) {
    containers_.erase(containers_.begin() + static_cast<ptrdiff_t>(idx));
  }
}

bool Bitmap::Contains(uint32_t value) const {
  size_t idx = FindContainer(HighBits(value));
  if (idx == containers_.size()) return false;
  return containers_[idx].Contains(LowBits(value));
}

void Bitmap::Clear() {
  containers_.clear();
  cardinality_ = 0;
}

uint32_t Bitmap::First() const {
  assert(!Empty());
  const Container& c = containers_.front();
  if (c.kind == Container::Kind::kArray) return Combine(c.key, c.array.front());
  for (uint32_t w = 0; w < kWordsPerBitset; ++w) {
    if (c.words[w] != 0) {
      return Combine(c.key, static_cast<uint16_t>(
                                (w << 6) | std::countr_zero(c.words[w])));
    }
  }
  return 0;  // unreachable given cardinality > 0
}

// ---------------------------------------------------------------------------
// Container-level set algebra
// ---------------------------------------------------------------------------

namespace {

// Intersection of two sorted uint16 arrays, linear merge with galloping when
// the sizes are lopsided.
void IntersectArrays(std::span<const uint16_t> a, std::span<const uint16_t> b,
                     std::vector<uint16_t>* out) {
  std::span<const uint16_t> small = a;
  std::span<const uint16_t> big = b;
  if (small.size() > big.size()) std::swap(small, big);
  if (big.size() > 32 * small.size()) {
    // Galloping: binary-search each element of the small side.
    auto begin = big.begin();
    for (uint16_t v : small) {
      begin = std::lower_bound(begin, big.end(), v);
      if (begin == big.end()) break;
      if (*begin == v) out->push_back(v);
    }
    return;
  }
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
}

}  // namespace

Bitmap::Container Bitmap::AndContainers(const Container& a,
                                        const Container& b) {
  Container out;
  out.key = a.key;
  using Kind = Container::Kind;
  if (a.kind == Kind::kArray && b.kind == Kind::kArray) {
    IntersectArrays(a.array, b.array, &out.array.Mutable());
    out.cardinality = static_cast<uint32_t>(out.array.size());
    return out;
  }
  if (a.kind == Kind::kBitset && b.kind == Kind::kBitset) {
    std::vector<uint64_t>& words = out.words.Mutable();
    words.assign(kWordsPerBitset, 0);
    uint32_t card = 0;
    for (uint32_t w = 0; w < kWordsPerBitset; ++w) {
      words[w] = a.words[w] & b.words[w];
      card += static_cast<uint32_t>(std::popcount(words[w]));
    }
    out.cardinality = card;
    out.kind = Kind::kBitset;
    out.ToArrayIfSmall();
    return out;
  }
  // array x bitset: probe the bitset with each array element.
  const Container& arr = (a.kind == Kind::kArray) ? a : b;
  const Container& bits = (a.kind == Kind::kArray) ? b : a;
  std::vector<uint16_t>& out_arr = out.array.Mutable();
  out_arr.reserve(arr.array.size());
  for (uint16_t low : arr.array) {
    if ((bits.words[low >> 6] >> (low & 63)) & 1) out_arr.push_back(low);
  }
  out.cardinality = static_cast<uint32_t>(out_arr.size());
  return out;
}

Bitmap::Container Bitmap::OrContainers(const Container& a, const Container& b) {
  Container out;
  out.key = a.key;
  using Kind = Container::Kind;
  if (a.kind == Kind::kArray && b.kind == Kind::kArray) {
    std::vector<uint16_t>& out_arr = out.array.Mutable();
    out_arr.reserve(a.array.size() + b.array.size());
    std::set_union(a.array.begin(), a.array.end(), b.array.begin(),
                   b.array.end(), std::back_inserter(out_arr));
    out.cardinality = static_cast<uint32_t>(out_arr.size());
    if (out.cardinality > kArrayCapacity) out.ToBitset();
    return out;
  }
  // At least one bitset: result is a bitset.
  out.kind = Kind::kBitset;
  std::vector<uint64_t>& words = out.words.Mutable();
  words.assign(kWordsPerBitset, 0);
  auto blend = [&words](const Container& c) {
    if (c.kind == Kind::kBitset) {
      for (uint32_t w = 0; w < kWordsPerBitset; ++w) words[w] |= c.words[w];
    } else {
      for (uint16_t low : c.array) words[low >> 6] |= uint64_t{1} << (low & 63);
    }
  };
  blend(a);
  blend(b);
  uint32_t card = 0;
  for (uint32_t w = 0; w < kWordsPerBitset; ++w) {
    card += static_cast<uint32_t>(std::popcount(words[w]));
  }
  out.cardinality = card;
  return out;
}

Bitmap::Container Bitmap::AndNotContainers(const Container& a,
                                           const Container& b) {
  Container out;
  out.key = a.key;
  using Kind = Container::Kind;
  if (a.kind == Kind::kArray) {
    std::vector<uint16_t>& out_arr = out.array.Mutable();
    out_arr.reserve(a.array.size());
    for (uint16_t low : a.array) {
      if (!b.Contains(low)) out_arr.push_back(low);
    }
    out.cardinality = static_cast<uint32_t>(out_arr.size());
    return out;
  }
  out.kind = Kind::kBitset;
  out.words = a.words;  // deep copy (a may borrow from a snapshot mapping)
  std::vector<uint64_t>& words = out.words.Mutable();
  if (b.kind == Kind::kBitset) {
    for (uint32_t w = 0; w < kWordsPerBitset; ++w) words[w] &= ~b.words[w];
  } else {
    for (uint16_t low : b.array) {
      words[low >> 6] &= ~(uint64_t{1} << (low & 63));
    }
  }
  uint32_t card = 0;
  for (uint32_t w = 0; w < kWordsPerBitset; ++w) {
    card += static_cast<uint32_t>(std::popcount(words[w]));
  }
  out.cardinality = card;
  out.ToArrayIfSmall();
  return out;
}

bool Bitmap::ContainersIntersect(const Container& a, const Container& b) {
  using Kind = Container::Kind;
  if (a.kind == Kind::kArray && b.kind == Kind::kArray) {
    size_t i = 0, j = 0;
    while (i < a.array.size() && j < b.array.size()) {
      if (a.array[i] < b.array[j]) {
        ++i;
      } else if (a.array[i] > b.array[j]) {
        ++j;
      } else {
        return true;
      }
    }
    return false;
  }
  if (a.kind == Kind::kBitset && b.kind == Kind::kBitset) {
    for (uint32_t w = 0; w < kWordsPerBitset; ++w) {
      if (a.words[w] & b.words[w]) return true;
    }
    return false;
  }
  const Container& arr = (a.kind == Kind::kArray) ? a : b;
  const Container& bits = (a.kind == Kind::kArray) ? b : a;
  for (uint16_t low : arr.array) {
    if ((bits.words[low >> 6] >> (low & 63)) & 1) return true;
  }
  return false;
}

bool Bitmap::ContainerSubset(const Container& a, const Container& b) {
  using Kind = Container::Kind;
  if (a.cardinality > b.cardinality) return false;
  if (a.kind == Kind::kBitset && b.kind == Kind::kBitset) {
    for (uint32_t w = 0; w < kWordsPerBitset; ++w) {
      if (a.words[w] & ~b.words[w]) return false;
    }
    return true;
  }
  if (a.kind == Kind::kArray) {
    for (uint16_t low : a.array) {
      if (!b.Contains(low)) return false;
    }
    return true;
  }
  // a bitset, b array with b.cardinality >= a.cardinality > kArrayCapacity is
  // impossible (arrays hold <= kArrayCapacity), so a cannot be a subset unless
  // it fits; fall back to an element scan.
  for (uint32_t w = 0; w < kWordsPerBitset; ++w) {
    uint64_t word = a.words[w];
    while (word != 0) {
      int bit = std::countr_zero(word);
      if (!b.Contains(static_cast<uint16_t>((w << 6) | bit))) return false;
      word &= word - 1;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Bitmap-level set algebra
// ---------------------------------------------------------------------------

bool Bitmap::Intersects(const Bitmap& other) const {
  size_t i = 0, j = 0;
  while (i < containers_.size() && j < other.containers_.size()) {
    uint16_t ka = containers_[i].key;
    uint16_t kb = other.containers_[j].key;
    if (ka < kb) {
      ++i;
    } else if (ka > kb) {
      ++j;
    } else {
      if (ContainersIntersect(containers_[i], other.containers_[j])) {
        return true;
      }
      ++i;
      ++j;
    }
  }
  return false;
}

bool Bitmap::IsSubsetOf(const Bitmap& other) const {
  if (cardinality_ > other.cardinality_) return false;
  size_t j = 0;
  for (const Container& c : containers_) {
    while (j < other.containers_.size() && other.containers_[j].key < c.key) {
      ++j;
    }
    if (j == other.containers_.size() || other.containers_[j].key != c.key) {
      return false;
    }
    if (!ContainerSubset(c, other.containers_[j])) return false;
  }
  return true;
}

Bitmap Bitmap::And(const Bitmap& a, const Bitmap& b) {
  Bitmap out;
  size_t i = 0, j = 0;
  while (i < a.containers_.size() && j < b.containers_.size()) {
    uint16_t ka = a.containers_[i].key;
    uint16_t kb = b.containers_[j].key;
    if (ka < kb) {
      ++i;
    } else if (ka > kb) {
      ++j;
    } else {
      Container c = AndContainers(a.containers_[i], b.containers_[j]);
      if (c.cardinality > 0) {
        out.cardinality_ += c.cardinality;
        out.containers_.push_back(std::move(c));
      }
      ++i;
      ++j;
    }
  }
  return out;
}

Bitmap Bitmap::Or(const Bitmap& a, const Bitmap& b) {
  Bitmap out;
  size_t i = 0, j = 0;
  while (i < a.containers_.size() || j < b.containers_.size()) {
    if (j == b.containers_.size() ||
        (i < a.containers_.size() &&
         a.containers_[i].key < b.containers_[j].key)) {
      out.containers_.push_back(a.containers_[i]);
      out.cardinality_ += a.containers_[i].cardinality;
      ++i;
    } else if (i == a.containers_.size() ||
               b.containers_[j].key < a.containers_[i].key) {
      out.containers_.push_back(b.containers_[j]);
      out.cardinality_ += b.containers_[j].cardinality;
      ++j;
    } else {
      Container c = OrContainers(a.containers_[i], b.containers_[j]);
      out.cardinality_ += c.cardinality;
      out.containers_.push_back(std::move(c));
      ++i;
      ++j;
    }
  }
  return out;
}

Bitmap Bitmap::AndNot(const Bitmap& a, const Bitmap& b) {
  Bitmap out;
  size_t j = 0;
  for (const Container& c : a.containers_) {
    while (j < b.containers_.size() && b.containers_[j].key < c.key) ++j;
    if (j < b.containers_.size() && b.containers_[j].key == c.key) {
      Container diff = AndNotContainers(c, b.containers_[j]);
      if (diff.cardinality > 0) {
        out.cardinality_ += diff.cardinality;
        out.containers_.push_back(std::move(diff));
      }
    } else {
      out.containers_.push_back(c);
      out.cardinality_ += c.cardinality;
    }
  }
  return out;
}

void Bitmap::AndWith(const Bitmap& other) { *this = And(*this, other); }
void Bitmap::OrWith(const Bitmap& other) { *this = Or(*this, other); }
void Bitmap::AndNotWith(const Bitmap& other) { *this = AndNot(*this, other); }

Bitmap Bitmap::AndMany(std::span<const Bitmap* const> inputs) {
  if (inputs.empty()) return Bitmap();
  std::vector<const Bitmap*> sorted(inputs.begin(), inputs.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const Bitmap* a, const Bitmap* b) {
              return a->Cardinality() < b->Cardinality();
            });
  Bitmap result = *sorted[0];
  for (size_t i = 1; i < sorted.size() && !result.Empty(); ++i) {
    result.AndWith(*sorted[i]);
  }
  return result;
}

Bitmap Bitmap::OrMany(std::span<const Bitmap* const> inputs) {
  if (inputs.empty()) return Bitmap();
  // Balanced pairwise reduction keeps intermediate results small.
  std::vector<Bitmap> level;
  level.reserve((inputs.size() + 1) / 2);
  for (size_t i = 0; i + 1 < inputs.size(); i += 2) {
    level.push_back(Or(*inputs[i], *inputs[i + 1]));
  }
  if (inputs.size() % 2 == 1) level.push_back(*inputs.back());
  while (level.size() > 1) {
    std::vector<Bitmap> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(Or(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(std::move(level.back()));
    level = std::move(next);
  }
  return std::move(level.front());
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

void Bitmap::Serialize(ByteSink& sink) const {
  sink.WriteU32(static_cast<uint32_t>(containers_.size()));
  sink.WriteU64(cardinality_);
  for (const Container& c : containers_) {
    sink.WriteU16(c.key);
    sink.WriteU8(static_cast<uint8_t>(c.kind));
    sink.WriteU32(c.cardinality);
    // Padding before each payload block lets the zero-copy loader borrow a
    // correctly aligned typed pointer straight into the snapshot mapping
    // (format v2; a v1 sink emits nothing here).
    sink.PadTo8();
    if (c.kind == Container::Kind::kArray) {
      sink.WriteRaw(c.array.data(), c.array.size() * sizeof(uint16_t));
    } else {
      sink.WriteRaw(c.words.data(), c.words.size() * sizeof(uint64_t));
    }
  }
}

Bitmap Bitmap::Deserialize(ByteSource& src) {
  Bitmap out;
  uint32_t num_containers = src.ReadU32();
  uint64_t total = src.ReadU64();
  if (!src.ok()) return Bitmap();
  out.containers_.reserve(num_containers);
  uint64_t seen = 0;
  for (uint32_t i = 0; i < num_containers; ++i) {
    // One fused read of the 7-byte container header (u16 key, u8 kind,
    // u32 cardinality) — this loop runs once per container across millions
    // of bitmaps on a big graph load.
    uint8_t hdr[7];
    if (!src.ReadRaw(hdr, sizeof(hdr))) return Bitmap();
    Container c;
    c.key = static_cast<uint16_t>(hdr[0] | (hdr[1] << 8));
    uint8_t kind = hdr[2];
    std::memcpy(&c.cardinality, hdr + 3, sizeof(uint32_t));
    if (!out.containers_.empty() && c.key <= out.containers_.back().key) {
      src.Fail("bitmap containers out of order");
      return Bitmap();
    }
    if (c.cardinality == 0 || c.cardinality > 65536) {
      src.Fail("bitmap container cardinality out of range");
      return Bitmap();
    }
    if (kind == static_cast<uint8_t>(Container::Kind::kArray)) {
      if (c.cardinality > kArrayCapacity) {
        src.Fail("bitmap array container too large");
        return Bitmap();
      }
      c.kind = Container::Kind::kArray;
      src.ReadBlock(c.cardinality, &c.array);
    } else if (kind == static_cast<uint8_t>(Container::Kind::kBitset)) {
      c.kind = Container::Kind::kBitset;
      src.ReadBlock(kWordsPerBitset, &c.words);
      if (!src.ok()) return Bitmap();
      uint32_t card = 0;
      for (uint64_t w : c.words) {
        card += static_cast<uint32_t>(std::popcount(w));
      }
      if (card != c.cardinality) {
        src.Fail("bitmap bitset cardinality mismatch");
        return Bitmap();
      }
    } else {
      src.Fail("unknown bitmap container kind");
      return Bitmap();
    }
    if (!src.ok()) return Bitmap();
    seen += c.cardinality;
    out.containers_.push_back(std::move(c));
  }
  if (seen != total) {
    src.Fail("bitmap cardinality mismatch");
    return Bitmap();
  }
  out.cardinality_ = total;
  return out;
}

// ---------------------------------------------------------------------------
// Iteration and comparison
// ---------------------------------------------------------------------------

void Bitmap::ForEach(const std::function<void(uint32_t)>& fn) const {
  for (const Container& c : containers_) {
    if (c.kind == Container::Kind::kArray) {
      for (uint16_t low : c.array) fn(Combine(c.key, low));
    } else {
      for (uint32_t w = 0; w < kWordsPerBitset; ++w) {
        uint64_t word = c.words[w];
        while (word != 0) {
          int bit = std::countr_zero(word);
          fn(Combine(c.key, static_cast<uint16_t>((w << 6) | bit)));
          word &= word - 1;
        }
      }
    }
  }
}

std::vector<uint32_t> Bitmap::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(cardinality_);
  ForEach([&out](uint32_t v) { out.push_back(v); });
  return out;
}

bool Bitmap::operator==(const Bitmap& other) const {
  if (cardinality_ != other.cardinality_) return false;
  if (containers_.size() != other.containers_.size()) return false;
  for (size_t i = 0; i < containers_.size(); ++i) {
    const Container& a = containers_[i];
    const Container& b = other.containers_[i];
    if (a.key != b.key || a.cardinality != b.cardinality) return false;
    if (a.kind == b.kind) {
      if (a.kind == Container::Kind::kArray) {
        if (a.array != b.array) return false;
      } else {
        if (a.words != b.words) return false;
      }
    } else {
      if (!ContainerSubset(a, b)) return false;  // same cardinality => equal
    }
  }
  return true;
}

size_t Bitmap::MemoryBytes() const {
  size_t bytes = sizeof(Bitmap) + containers_.size() * sizeof(Container);
  for (const Container& c : containers_) {
    bytes += c.array.OwnedHeapBytes();
    bytes += c.words.OwnedHeapBytes();
  }
  return bytes;
}

}  // namespace rigpm
