#ifndef RIGPM_RIG_RIG_BUILDER_H_
#define RIGPM_RIG_RIG_BUILDER_H_

#include <cstdint>

#include "graph/interval_labels.h"
#include "rig/rig.h"
#include "sim/fbsim.h"
#include "sim/match_sets.h"

namespace rigpm {

/// Options for Algorithm 4 (BuildRIG).
struct RigBuildOptions {
  /// Double-simulation algorithm for the node-selection phase.
  SimAlgorithm sim_algorithm = SimAlgorithm::kDagMap;

  /// Simulation tuning. The paper fixes max_passes = 3 ("approximate the
  /// double simulation by stopping after N passes", Section 4.5).
  SimOptions sim = {.max_passes = 3};

  /// Skip the simulation entirely and expand over the given node sets
  /// (match sets or pre-filtered sets) — the GM-F ablation of Fig. 13.
  bool skip_simulation = false;

  /// Early expansion termination using DFS interval labels: when scanning
  /// cos(q) in ascending `begin` order, stop at the first vq with
  /// end(vp) < begin(vq) (Section 4.5; up to 30% expansion speedup).
  bool early_termination = true;

  /// Drop candidates that end the expansion phase without a RIG edge on
  /// some incident query edge. Off by default (matches the paper; MJoin
  /// handles them through empty intersections).
  bool prune_isolated = false;
};

struct RigBuildStats {
  SimStats sim;
  uint64_t expand_pair_checks = 0;  // candidate pairs probed in expansion
  uint64_t early_cutoffs = 0;       // scans stopped by the interval cutoff
  double select_ms = 0.0;
  double expand_ms = 0.0;
};

/// Procedure select of Algorithm 4 as a standalone stage: refines `initial`
/// into the RIG node sets cos(q) by running double simulation and
/// intersecting with the seeds (a no-op pass-through when
/// opts.skip_simulation). Fills stats->sim and stats->select_ms. The staged
/// query pipeline (engine/pipeline.h) runs this as its Simulate phase.
CandidateSets SelectRigNodes(const MatchContext& ctx, const PatternQuery& q,
                             CandidateSets initial,
                             const RigBuildOptions& opts = {},
                             RigBuildStats* stats = nullptr);

/// Procedure expand of Algorithm 4 as a standalone stage: wraps the selected
/// node sets into a Rig and materializes the RIG edges per query edge.
/// Expansion is skipped when some cos(q) is empty (the answer is then
/// provably empty). Fills stats->expand_* and stats->expand_ms.
Rig ExpandRig(const MatchContext& ctx, const PatternQuery& q,
              CandidateSets cos, const RigBuildOptions& opts = {},
              const IntervalLabels* intervals = nullptr,
              RigBuildStats* stats = nullptr);

/// Algorithm 4: node selection (double simulation over `ctx`) followed by
/// node expansion into RIG edges — SelectRigNodes + ExpandRig in one call.
/// `intervals` enables the early-termination optimization and may be null.
/// `initial` is the candidate sets to start from (typically ms(q); a
/// pre-filtered subset for the GM variants).
Rig BuildRig(const MatchContext& ctx, const PatternQuery& q,
             CandidateSets initial, const RigBuildOptions& opts = {},
             const IntervalLabels* intervals = nullptr,
             RigBuildStats* stats = nullptr);

/// Convenience: starts from the label match sets ms(q).
Rig BuildRigFromMatchSets(const MatchContext& ctx, const PatternQuery& q,
                          const RigBuildOptions& opts = {},
                          const IntervalLabels* intervals = nullptr,
                          RigBuildStats* stats = nullptr);

}  // namespace rigpm

#endif  // RIGPM_RIG_RIG_BUILDER_H_
