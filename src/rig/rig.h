#ifndef RIGPM_RIG_RIG_H_
#define RIGPM_RIG_RIG_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "bitmap/bitmap.h"
#include "query/pattern_query.h"

namespace rigpm {

/// Runtime Index Graph (Definition 4.1): a k-partite graph with one
/// independent node set cos(q) per query node q and, for every query edge
/// e = (p, q), directed edges from cos(p) to cos(q) — the candidate
/// occurrence set cos(e).
///
/// Adjacency is stored per query edge as compressed bitmaps keyed by data
/// node: `Forward(e, vp)` is the set of vq ∈ cos(q) with (vp, vq) ∈ cos(e),
/// and `Backward(e, vq)` the reverse. MJoin's multiway intersections operate
/// directly on these bitmaps (Section 5).
///
/// Invariant (Proposition 4.1): for every homomorphism h of Q and every
/// query edge (p, q), the pair (h(p), h(q)) is an edge of the RIG, i.e. the
/// RIG losslessly encodes the query answer search space.
class Rig {
 public:
  /// Creates an edgeless RIG with the given candidate node sets (one per
  /// query node of `q`).
  Rig(const PatternQuery& q, std::vector<Bitmap> node_sets);

  uint32_t NumQueryNodes() const {
    return static_cast<uint32_t>(cos_.size());
  }

  /// cos(q): candidate occurrence set of query node `q`.
  const Bitmap& Cos(QueryNodeId q) const { return cos_[q]; }

  /// Adds the RIG edge (vp, vq) for query edge index `e`.
  void AddEdge(QueryEdgeId e, NodeId vp, NodeId vq);

  /// Forward adjacency of `vp` along query edge `e`; empty bitmap when none.
  const Bitmap& Forward(QueryEdgeId e, NodeId vp) const;
  /// Backward adjacency of `vq` along query edge `e`.
  const Bitmap& Backward(QueryEdgeId e, NodeId vq) const;

  /// |cos(e)|: number of RIG edges for query edge `e`.
  uint64_t EdgeCount(QueryEdgeId e) const { return edge_counts_[e]; }

  /// Total number of RIG nodes (sum of |cos(q)|).
  uint64_t TotalNodes() const;
  /// Total number of RIG edges (sum over query edges of |cos(e)|).
  uint64_t TotalEdges() const;
  /// Size = nodes + edges, the measure Fig. 13 reports.
  uint64_t Size() const { return TotalNodes() + TotalEdges(); }

  /// True iff some candidate set is empty — the query answer is then empty
  /// and evaluation can stop early (Section 4.3's early-termination win).
  bool AnyEmpty() const;

  /// Approximate heap footprint.
  size_t MemoryBytes() const;

  std::string Summary() const;

  /// Removes nodes from cos(q) that lost all incident RIG edges for some
  /// incident query edge during expansion (cheap post-pass; keeps the RIG
  /// small without affecting losslessness).
  void PruneIsolated(const PatternQuery& q);

 private:
  using AdjacencyMap = std::unordered_map<NodeId, Bitmap>;

  std::vector<Bitmap> cos_;                  // per query node
  std::vector<AdjacencyMap> forward_;        // per query edge
  std::vector<AdjacencyMap> backward_;       // per query edge
  std::vector<uint64_t> edge_counts_;        // per query edge
  Bitmap empty_;                             // returned for absent keys
};

}  // namespace rigpm

#endif  // RIGPM_RIG_RIG_H_
