#include "rig/rig_builder.h"

#include <algorithm>
#include <chrono>

namespace rigpm {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Expands one query edge (Procedure expand): connects every vp in cos(p) to
// its partners in cos(q).
void ExpandEdge(const MatchContext& ctx, const PatternQuery& q, QueryEdgeId e,
                const IntervalLabels* intervals, bool early_termination,
                Rig* rig, RigBuildStats* stats) {
  const QueryEdge& edge = q.Edge(e);
  const Graph& g = ctx.graph();
  const Bitmap& src = rig->Cos(edge.from);
  const Bitmap& dst = rig->Cos(edge.to);
  if (src.Empty() || dst.Empty()) return;

  if (edge.kind == EdgeKind::kChild) {
    // Direct connectivity as one set intersection per source node:
    // adjf(vp) ∩ cos(q) (Section 4.5).
    src.ForEach([&](NodeId vp) {
      if (stats != nullptr) ++stats->expand_pair_checks;
      Bitmap partners = Bitmap::And(g.OutBitmap(vp), dst);
      partners.ForEach([&](NodeId vq) { rig->AddEdge(e, vp, vq); });
    });
    return;
  }

  // Reachability edge: probe pairs through the reachability index. With
  // interval labels, scan cos(q) in ascending `begin` order and cut the
  // scan at the first vq that starts after vp finished.
  std::vector<NodeId> dst_nodes = dst.ToVector();
  if (intervals != nullptr && early_termination) {
    std::sort(dst_nodes.begin(), dst_nodes.end(), [&](NodeId a, NodeId b) {
      return intervals->Begin(a) < intervals->Begin(b);
    });
  }
  src.ForEach([&](NodeId vp) {
    for (NodeId vq : dst_nodes) {
      if (intervals != nullptr && early_termination &&
          intervals->End(vp) < intervals->Begin(vq)) {
        if (stats != nullptr) ++stats->early_cutoffs;
        break;  // every later vq has an even larger begin
      }
      if (stats != nullptr) ++stats->expand_pair_checks;
      bool reaches = (edge.max_hops > 0)
                         ? BoundedReaches(g, vp, vq, edge.max_hops)
                         : ctx.reach().Reaches(vp, vq);
      if (reaches) rig->AddEdge(e, vp, vq);
    }
  });
}

}  // namespace

CandidateSets SelectRigNodes(const MatchContext& ctx, const PatternQuery& q,
                             CandidateSets initial,
                             const RigBuildOptions& opts,
                             RigBuildStats* stats) {
  auto t0 = std::chrono::steady_clock::now();
  CandidateSets cos;
  if (opts.skip_simulation) {
    cos = std::move(initial);
  } else {
    // The simulation runs from the provided sets; sound because FB computed
    // from any superset of os(q) still contains os(q).
    CandidateSets fb = std::move(initial);
    MatchContext sub_ctx(ctx.graph(), ctx.reach());
    // Reuse the FBSim machinery but seed it with `fb` by intersecting the
    // result of the chosen algorithm (which starts from ms(q)) with fb: for
    // the common case fb == ms(q) this is exact; for pre-filtered seeds it
    // only removes more redundant nodes.
    SimStats* sim_stats = (stats != nullptr) ? &stats->sim : nullptr;
    CandidateSets sim =
        ComputeDoubleSimulation(sub_ctx, q, opts.sim_algorithm, opts.sim,
                                sim_stats);
    cos.resize(q.NumNodes());
    for (QueryNodeId i = 0; i < q.NumNodes(); ++i) {
      cos[i] = Bitmap::And(sim[i], fb[i]);
    }
  }
  if (stats != nullptr) stats->select_ms = MsSince(t0);
  return cos;
}

Rig ExpandRig(const MatchContext& ctx, const PatternQuery& q,
              CandidateSets cos, const RigBuildOptions& opts,
              const IntervalLabels* intervals, RigBuildStats* stats) {
  Rig rig(q, std::move(cos));

  // Expansion is skipped entirely when some cos(q) is empty: the answer is
  // empty (early termination, Section 4.3).
  auto t1 = std::chrono::steady_clock::now();
  if (!rig.AnyEmpty()) {
    for (QueryEdgeId e = 0; e < q.NumEdges(); ++e) {
      ExpandEdge(ctx, q, e, intervals, opts.early_termination, &rig, stats);
    }
    if (opts.prune_isolated) rig.PruneIsolated(q);
  }
  if (stats != nullptr) stats->expand_ms = MsSince(t1);
  return rig;
}

Rig BuildRig(const MatchContext& ctx, const PatternQuery& q,
             CandidateSets initial, const RigBuildOptions& opts,
             const IntervalLabels* intervals, RigBuildStats* stats) {
  return ExpandRig(ctx, q,
                   SelectRigNodes(ctx, q, std::move(initial), opts, stats),
                   opts, intervals, stats);
}

Rig BuildRigFromMatchSets(const MatchContext& ctx, const PatternQuery& q,
                          const RigBuildOptions& opts,
                          const IntervalLabels* intervals,
                          RigBuildStats* stats) {
  return BuildRig(ctx, q, InitialMatchSets(ctx.graph(), q), opts, intervals,
                  stats);
}

}  // namespace rigpm
