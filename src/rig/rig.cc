#include "rig/rig.h"

#include <sstream>

namespace rigpm {

Rig::Rig(const PatternQuery& q, std::vector<Bitmap> node_sets)
    : cos_(std::move(node_sets)),
      forward_(q.NumEdges()),
      backward_(q.NumEdges()),
      edge_counts_(q.NumEdges(), 0) {}

void Rig::AddEdge(QueryEdgeId e, NodeId vp, NodeId vq) {
  forward_[e][vp].Add(vq);
  backward_[e][vq].Add(vp);
  ++edge_counts_[e];
}

const Bitmap& Rig::Forward(QueryEdgeId e, NodeId vp) const {
  auto it = forward_[e].find(vp);
  return it == forward_[e].end() ? empty_ : it->second;
}

const Bitmap& Rig::Backward(QueryEdgeId e, NodeId vq) const {
  auto it = backward_[e].find(vq);
  return it == backward_[e].end() ? empty_ : it->second;
}

uint64_t Rig::TotalNodes() const {
  uint64_t total = 0;
  for (const Bitmap& b : cos_) total += b.Cardinality();
  return total;
}

uint64_t Rig::TotalEdges() const {
  uint64_t total = 0;
  for (uint64_t c : edge_counts_) total += c;
  return total;
}

bool Rig::AnyEmpty() const {
  for (const Bitmap& b : cos_) {
    if (b.Empty()) return true;
  }
  return false;
}

size_t Rig::MemoryBytes() const {
  size_t bytes = sizeof(Rig);
  for (const Bitmap& b : cos_) bytes += b.MemoryBytes();
  for (const auto& map : forward_) {
    for (const auto& [k, b] : map) bytes += sizeof(k) + b.MemoryBytes();
  }
  for (const auto& map : backward_) {
    for (const auto& [k, b] : map) bytes += sizeof(k) + b.MemoryBytes();
  }
  return bytes;
}

std::string Rig::Summary() const {
  std::ostringstream os;
  os << "RIG nodes=" << TotalNodes() << " edges=" << TotalEdges();
  return os.str();
}

void Rig::PruneIsolated(const PatternQuery& q) {
  // A candidate vp in cos(p) that has no RIG edge for some incident query
  // edge cannot appear in any occurrence; drop it and its remaining edges.
  bool changed = true;
  while (changed) {
    changed = false;
    for (QueryNodeId p = 0; p < q.NumNodes(); ++p) {
      std::vector<NodeId> to_remove;
      cos_[p].ForEach([&](NodeId v) {
        for (QueryEdgeId e : q.OutEdges(p)) {
          if (Forward(e, v).Empty()) {
            to_remove.push_back(v);
            return;
          }
        }
        for (QueryEdgeId e : q.InEdges(p)) {
          if (Backward(e, v).Empty()) {
            to_remove.push_back(v);
            return;
          }
        }
      });
      if (to_remove.empty()) continue;
      changed = true;
      for (NodeId v : to_remove) {
        cos_[p].Remove(v);
        // Detach v's incident RIG edges.
        for (QueryEdgeId e : q.OutEdges(p)) {
          auto it = forward_[e].find(v);
          if (it == forward_[e].end()) continue;
          it->second.ForEach([&](NodeId w) {
            auto bit = backward_[e].find(w);
            if (bit != backward_[e].end()) bit->second.Remove(v);
          });
          edge_counts_[e] -= it->second.Cardinality();
          forward_[e].erase(it);
        }
        for (QueryEdgeId e : q.InEdges(p)) {
          auto it = backward_[e].find(v);
          if (it == backward_[e].end()) continue;
          it->second.ForEach([&](NodeId u) {
            auto fit = forward_[e].find(u);
            if (fit != forward_[e].end()) fit->second.Remove(v);
          });
          edge_counts_[e] -= it->second.Cardinality();
          backward_[e].erase(it);
        }
      }
    }
  }
}

}  // namespace rigpm
