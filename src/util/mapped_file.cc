#include "util/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rigpm {

namespace {

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

}  // namespace

std::shared_ptr<MappedFile> MappedFile::Open(const std::string& path,
                                             std::string* error) {
  // Check the file type BEFORE opening: merely opening a FIFO blocks until
  // a writer appears (and consumes the writer's one rendezvous that the
  // streaming fallback needs), so non-regular files must be rejected
  // without ever touching them.
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    SetError(error, "cannot stat " + path + ": " + std::strerror(errno));
    return nullptr;
  }
  if (!S_ISREG(st.st_mode)) {
    // FIFOs, sockets, devices: no well-defined size to map; the caller
    // falls back to a streaming read.
    SetError(error, path + " is not a regular file (cannot mmap)");
    return nullptr;
  }
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    SetError(error, "cannot open " + path + ": " + std::strerror(errno));
    return nullptr;
  }
  if (::fstat(fd, &st) != 0) {
    SetError(error, "cannot stat " + path + ": " + std::strerror(errno));
    ::close(fd);
    return nullptr;
  }
  if (st.st_size <= 0) {
    SetError(error, path + " is empty (cannot mmap)");
    ::close(fd);
    return nullptr;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  // The mapping holds its own reference to the file; the descriptor is no
  // longer needed either way.
  ::close(fd);
  if (addr == MAP_FAILED) {
    SetError(error, "cannot mmap " + path + ": " + std::strerror(errno));
    return nullptr;
  }
  // The loader's first pass (checksum) streams the whole file once;
  // WILLNEED starts the read-ahead immediately. Advisory only — failure is
  // harmless.
  (void)::madvise(addr, size, MADV_SEQUENTIAL);
  (void)::madvise(addr, size, MADV_WILLNEED);
  return std::shared_ptr<MappedFile>(
      new MappedFile(static_cast<const uint8_t*>(addr), size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

void MappedFile::AdviseRandom() {
  if (data_ != nullptr) {
    (void)::madvise(const_cast<uint8_t*>(data_), size_, MADV_RANDOM);
  }
}

}  // namespace rigpm
