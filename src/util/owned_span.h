#ifndef RIGPM_UTIL_OWNED_SPAN_H_
#define RIGPM_UTIL_OWNED_SPAN_H_

#include <cstddef>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace rigpm {

/// Storage for a POD array that is either *owned* (a std::vector, the build
/// path) or *borrowed* (a pointer + size into memory someone else keeps
/// alive, the zero-copy snapshot load path — see storage/snapshot.h).
///
/// Lifetime contract for borrowed spans: the borrow target must outlive the
/// span. The snapshot loader guarantees this by handing every deserialized
/// top-level object (Graph, BflIndex, ...) a shared ownership token for the
/// underlying file mapping; the spans inside those objects are plain
/// pointers with no token of their own.
///
/// Copying always materializes an owned deep copy — a copy may outlive the
/// object whose token keeps the borrow target alive, so borrowed-ness is
/// never silently propagated. Moving transfers the borrow.
template <typename T>
class OwnedOrBorrowedSpan {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  OwnedOrBorrowedSpan() = default;
  OwnedOrBorrowedSpan(std::vector<T> v) : vec_(std::move(v)) {}

  OwnedOrBorrowedSpan(const OwnedOrBorrowedSpan& other) { *this = other; }
  OwnedOrBorrowedSpan& operator=(const OwnedOrBorrowedSpan& other) {
    if (this != &other) {
      vec_.assign(other.begin(), other.end());
      data_ = nullptr;
      size_ = 0;
    }
    return *this;
  }

  OwnedOrBorrowedSpan(OwnedOrBorrowedSpan&& other) noexcept
      : data_(other.data_), size_(other.size_), vec_(std::move(other.vec_)) {
    other.data_ = nullptr;
    other.size_ = 0;
  }
  OwnedOrBorrowedSpan& operator=(OwnedOrBorrowedSpan&& other) noexcept {
    if (this != &other) {
      data_ = other.data_;
      size_ = other.size_;
      vec_ = std::move(other.vec_);
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  /// Points the span at external storage the caller keeps alive. Frees any
  /// owned data.
  void Borrow(const T* data, size_t n) {
    vec_.clear();
    vec_.shrink_to_fit();
    data_ = data;
    size_ = n;
  }

  bool borrowed() const { return data_ != nullptr; }

  /// Copy-on-write escape hatch: returns the owned vector, first
  /// materializing a private copy if the span is currently borrowed. The
  /// reference stays valid until the next Borrow()/copy/move of this span.
  std::vector<T>& Mutable() {
    if (data_ != nullptr) {
      vec_.assign(data_, data_ + size_);
      data_ = nullptr;
      size_ = 0;
    }
    return vec_;
  }

  /// Drops all data (owned and borrowed) and frees owned capacity.
  void Reset() {
    vec_.clear();
    vec_.shrink_to_fit();
    data_ = nullptr;
    size_ = 0;
  }

  const T* data() const { return data_ != nullptr ? data_ : vec_.data(); }
  size_t size() const { return data_ != nullptr ? size_ : vec_.size(); }
  bool empty() const { return size() == 0; }

  const T& operator[](size_t i) const { return data()[i]; }
  const T& front() const { return data()[0]; }
  const T& back() const { return data()[size() - 1]; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }

  operator std::span<const T>() const { return {data(), size()}; }

  bool operator==(const OwnedOrBorrowedSpan& other) const {
    if (size() != other.size()) return false;
    for (size_t i = 0; i < size(); ++i) {
      if (data()[i] != other.data()[i]) return false;
    }
    return true;
  }
  bool operator!=(const OwnedOrBorrowedSpan& other) const {
    return !(*this == other);
  }

  /// Heap bytes held by the owned vector (borrowed storage is accounted to
  /// its real owner — typically a file mapping shared between processes).
  size_t OwnedHeapBytes() const { return vec_.capacity() * sizeof(T); }

 private:
  const T* data_ = nullptr;  // non-null iff borrowed
  size_t size_ = 0;          // element count when borrowed
  std::vector<T> vec_;       // storage when owned
};

}  // namespace rigpm

#endif  // RIGPM_UTIL_OWNED_SPAN_H_
