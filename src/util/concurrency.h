#ifndef RIGPM_UTIL_CONCURRENCY_H_
#define RIGPM_UTIL_CONCURRENCY_H_

#include <cstddef>
#include <cstdint>

namespace rigpm {

/// Resolves a requested worker count to the number of threads to actually
/// spawn — the one policy every parallel stage shares (parallel MJoin,
/// EvaluateBatch, GraphDatabase verify): 0 means
/// std::thread::hardware_concurrency() (falling back to 2 when the runtime
/// reports 0), and the result never exceeds `work_items` nor drops below 1.
uint32_t ResolveWorkerCount(uint32_t requested, size_t work_items);

}  // namespace rigpm

#endif  // RIGPM_UTIL_CONCURRENCY_H_
