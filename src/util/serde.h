#ifndef RIGPM_UTIL_SERDE_H_
#define RIGPM_UTIL_SERDE_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/owned_span.h"

namespace rigpm {

// Binary serialization primitives shared by the snapshot subsystem
// (storage/snapshot.h). All multi-byte values are stored in the host's
// native byte order; snapshots are a warm-start cache for the machine that
// wrote them, not an interchange format, and the build targets little-endian
// hosts only (asserted below so a port fails loudly, not silently).
static_assert(std::endian::native == std::endian::little,
              "snapshot format assumes a little-endian host");

/// 64-bit integrity checksum over `n` bytes: four independent
/// multiply-rotate lanes folded with the length at the end. Chosen over
/// table-based CRC-32 because snapshot loading checksums hundreds of MB and
/// this runs at memory speed (CRC-32 slicing topped out ~1.3 GB/s on the
/// dev box and dominated warm-start latency).
uint64_t Checksum64(const void* data, size_t n, uint64_t seed = 0);

/// Incremental form of Checksum64 for data that arrives in chunks (the
/// snapshot reader's streaming fallback checksums bounded blocks as they
/// land instead of requiring the whole payload in memory first). Feeding
/// the same bytes in any chunking yields exactly the one-shot result.
class Checksum64Stream {
 public:
  explicit Checksum64Stream(uint64_t seed = 0);

  void Update(const void* data, size_t n);

  /// Folds in the total length and returns the digest. May be called once.
  uint64_t Finish();

 private:
  void Block(const uint8_t* chunk);  // exactly 32 bytes

  uint64_t lanes_[4];
  uint64_t total_ = 0;
  uint8_t tail_[32];     // carry-over bytes not yet forming a 32-byte block
  size_t tail_len_ = 0;
};

/// Growable in-memory byte buffer that the Serialize() methods append to.
/// The snapshot writer frames the finished buffer with a header and CRC.
///
/// `pad_arrays` controls whether WriteSpan/PadTo8 emit alignment padding
/// (snapshot format v2). `encode_runs` controls whether Bitmap::Serialize
/// may emit run containers in their native encoding (snapshot format v3);
/// with it off, run containers are materialized as array/bitset blocks so
/// the image stays readable by pre-v3 decoders. Both exist only so tests
/// and migration tools can reproduce older layouts; leave them on
/// everywhere else.
class ByteSink {
 public:
  explicit ByteSink(bool pad_arrays = true, bool encode_runs = true)
      : pad_arrays_(pad_arrays), encode_runs_(encode_runs) {}

  bool encode_runs() const { return encode_runs_; }

  void WriteRaw(const void* data, size_t n) {
    if (n == 0) return;
    size_t old_size = buffer_.size();
    buffer_.resize(old_size + n);
    std::memcpy(buffer_.data() + old_size, data, n);
  }

  void WriteU8(uint8_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU16(uint16_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }

  /// u64 byte length followed by the raw characters.
  void WriteString(const std::string& s) {
    WriteU64(s.size());
    WriteRaw(s.data(), s.size());
  }

  /// u64 element count followed by the elements as one raw block. This is
  /// the container-at-a-time fast path: a vector of POD round-trips as a
  /// single memcpy-sized write instead of one call per element.
  template <typename T>
  void WriteVec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(v.size());
    WriteRaw(v.data(), v.size() * sizeof(T));
  }

  /// Zero-pads the buffer to the next 8-byte boundary (no-op when the sink
  /// was built with pad_arrays = false). Offsets are relative to the buffer
  /// start, which the snapshot container guarantees lands 8-byte aligned in
  /// both the file mapping and the slurp buffer, so "aligned in the buffer"
  /// means "aligned in memory" on the load side.
  void PadTo8() {
    if (!pad_arrays_) return;
    static constexpr uint8_t kZeros[8] = {0};
    size_t pad = (8 - (buffer_.size() & 7)) & 7;
    WriteRaw(kZeros, pad);
  }

  /// u64 element count, alignment padding, then the elements as one raw
  /// block. The padding is what lets the zero-copy loader hand out typed
  /// pointers straight into the snapshot mapping (snapshot format v2);
  /// mirror of ByteSource::ReadSpan.
  template <typename T>
  void WriteSpan(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(v.size());
    PadTo8();
    WriteRaw(v.data(), v.size() * sizeof(T));
  }

  const std::vector<uint8_t>& data() const { return buffer_; }
  size_t size() const { return buffer_.size(); }

 private:
  std::vector<uint8_t> buffer_;
  bool pad_arrays_;
  bool encode_runs_;
};

/// Bounded reader over an in-memory payload — either a buffer the snapshot
/// reader slurped (checksummed in one pass before any decoding, so decode
/// itself is pure memcpy) or a borrowed view of a file mapping. Every
/// accessor fails softly: after the first error (truncation, overrun,
/// caller-reported corruption) `ok()` turns false, subsequent reads return
/// zero values, and `error()` describes the first failure. Deserializers
/// can therefore run a straight-line decode and check `ok()` once at the
/// end.
///
/// Zero-copy mode (EnableZeroCopy): ReadSpan/ReadBlock hand out borrowed
/// pointers into the payload instead of copying, and expose the storage
/// ownership token deserialized objects must retain so the payload outlives
/// every borrowed view. Without it (the default) they always copy, so the
/// payload may be discarded after decoding.
class ByteSource {
 public:
  /// The caller keeps `data` alive and unchanged while reading.
  ByteSource(const void* data, size_t n)
      : base_(static_cast<const uint8_t*>(data)),
        cursor_(base_),
        remaining_(n) {}

  ByteSource(const ByteSource&) = delete;
  ByteSource& operator=(const ByteSource&) = delete;

  /// Allows ReadSpan/ReadBlock to borrow instead of copy. `storage` is the
  /// ownership token (e.g. a shared_ptr<MappedFile>) that keeps the payload
  /// alive; deserialized objects copy it via storage().
  void EnableZeroCopy(std::shared_ptr<const void> storage) {
    zero_copy_ = true;
    storage_ = std::move(storage);
  }

  /// Reads payloads written without alignment padding (snapshot format v1,
  /// where ReadSpan always copies and never skips pad bytes).
  void SetUnpadded() { padded_ = false; }

  /// Switches Bitmap::Deserialize to the pre-v3 bitmap layout: the per-
  /// bitmap redundant total-cardinality word is expected (v3 drops it), and
  /// run containers are rejected — pre-v3 images never contain them, so one
  /// appearing means the file is corrupt or mislabeled. The snapshot reader
  /// calls this for version < 3 headers.
  void DisallowRunContainers() { allow_runs_ = false; }
  bool run_containers_allowed() const { return allow_runs_; }

  /// Null unless zero-copy mode is on.
  const std::shared_ptr<const void>& storage() const { return storage_; }

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  uint64_t remaining() const { return remaining_; }

  /// Records the first failure; reads after this are no-ops.
  void Fail(const std::string& msg) {
    if (ok_) {
      ok_ = false;
      error_ = msg;
    }
  }

  bool ReadRaw(void* data, size_t n) {
    if (!ok_) return false;
    if (n == 0) return true;  // empty vector: data() may be null
    if (n > remaining_) {
      Fail("truncated snapshot payload");
      return false;
    }
    std::memcpy(data, cursor_, n);
    cursor_ += n;
    remaining_ -= n;
    return true;
  }

  uint8_t ReadU8() { return ReadPod<uint8_t>(); }
  uint16_t ReadU16() { return ReadPod<uint16_t>(); }
  uint32_t ReadU32() { return ReadPod<uint32_t>(); }
  uint64_t ReadU64() { return ReadPod<uint64_t>(); }

  std::string ReadString();

  /// Mirror of ByteSink::WriteVec. The element count is validated against
  /// the bytes remaining in the payload before anything is allocated, so a
  /// corrupt length cannot trigger a huge allocation. (The payload carries
  /// no alignment guarantees, so the copy goes through memcpy, never a
  /// typed pointer into the buffer.)
  template <typename T>
  bool ReadVec(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = ReadU64();
    if (!ok_) return false;
    if (count > remaining_ / sizeof(T)) {
      Fail("vector length exceeds snapshot payload");
      return false;
    }
    out->resize(count);
    return ReadRaw(out->data(), count * sizeof(T));
  }

  /// Consumes the alignment padding WriteSpan/PadTo8 emitted (no-op after
  /// SetUnpadded — v1 payloads carry none).
  bool SkipPad8() {
    if (!ok_) return false;
    if (!padded_) return true;
    size_t pad = (8 - (static_cast<size_t>(cursor_ - base_) & 7)) & 7;
    if (pad > remaining_) {
      Fail("truncated snapshot payload");
      return false;
    }
    cursor_ += pad;
    remaining_ -= pad;
    return true;
  }

  /// Reads `count` elements whose count was transmitted out of band (e.g.
  /// in a bitmap container header): skips alignment padding, then either
  /// borrows a typed pointer into the payload (zero-copy mode, pointer
  /// suitably aligned — guaranteed for padded v2 payloads, checked at
  /// runtime regardless) or copies into owned storage.
  template <typename T>
  bool ReadBlock(size_t count, OwnedOrBorrowedSpan<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!SkipPad8()) return false;
    if (count > remaining_ / sizeof(T)) {
      Fail("array length exceeds snapshot payload");
      return false;
    }
    const size_t bytes = count * sizeof(T);
    if (zero_copy_ &&
        reinterpret_cast<uintptr_t>(cursor_) % alignof(T) == 0) {
      out->Borrow(reinterpret_cast<const T*>(cursor_), count);
      cursor_ += bytes;
      remaining_ -= bytes;
      return true;
    }
    std::vector<T>& vec = out->Mutable();
    vec.resize(count);
    return ReadRaw(vec.data(), bytes);
  }

  /// Mirror of ByteSink::WriteSpan: u64 count, padding, raw block.
  template <typename T>
  bool ReadSpan(OwnedOrBorrowedSpan<T>* out) {
    uint64_t count = ReadU64();
    if (!ok_) return false;
    if (count > remaining_ / sizeof(T)) {
      Fail("array length exceeds snapshot payload");
      return false;
    }
    return ReadBlock(static_cast<size_t>(count), out);
  }

 private:
  template <typename T>
  T ReadPod() {
    T v{};
    ReadRaw(&v, sizeof(v));
    return v;
  }

  const uint8_t* base_;
  const uint8_t* cursor_;
  uint64_t remaining_;
  bool ok_ = true;
  bool padded_ = true;
  bool allow_runs_ = true;
  bool zero_copy_ = false;
  std::shared_ptr<const void> storage_;
  std::string error_;
};

}  // namespace rigpm

#endif  // RIGPM_UTIL_SERDE_H_
