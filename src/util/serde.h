#ifndef RIGPM_UTIL_SERDE_H_
#define RIGPM_UTIL_SERDE_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace rigpm {

// Binary serialization primitives shared by the snapshot subsystem
// (storage/snapshot.h). All multi-byte values are stored in the host's
// native byte order; snapshots are a warm-start cache for the machine that
// wrote them, not an interchange format, and the build targets little-endian
// hosts only (asserted below so a port fails loudly, not silently).
static_assert(std::endian::native == std::endian::little,
              "snapshot format assumes a little-endian host");

/// 64-bit integrity checksum over `n` bytes: four independent
/// multiply-rotate lanes folded with the length at the end. Chosen over
/// table-based CRC-32 because snapshot loading checksums hundreds of MB and
/// this runs at memory speed (CRC-32 slicing topped out ~1.3 GB/s on the
/// dev box and dominated warm-start latency).
uint64_t Checksum64(const void* data, size_t n, uint64_t seed = 0);

/// Growable in-memory byte buffer that the Serialize() methods append to.
/// The snapshot writer frames the finished buffer with a header and CRC.
class ByteSink {
 public:
  void WriteRaw(const void* data, size_t n) {
    if (n == 0) return;
    size_t old_size = buffer_.size();
    buffer_.resize(old_size + n);
    std::memcpy(buffer_.data() + old_size, data, n);
  }

  void WriteU8(uint8_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU16(uint16_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }

  /// u64 byte length followed by the raw characters.
  void WriteString(const std::string& s) {
    WriteU64(s.size());
    WriteRaw(s.data(), s.size());
  }

  /// u64 element count followed by the elements as one raw block. This is
  /// the container-at-a-time fast path: a vector of POD round-trips as a
  /// single memcpy-sized write instead of one call per element.
  template <typename T>
  void WriteVec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(v.size());
    WriteRaw(v.data(), v.size() * sizeof(T));
  }

  const std::vector<uint8_t>& data() const { return buffer_; }
  size_t size() const { return buffer_.size(); }

 private:
  std::vector<uint8_t> buffer_;
};

/// Bounded reader over an in-memory payload (the snapshot reader slurps the
/// file's payload with one read and checksums it in one pass before any
/// decoding, so decode itself is pure memcpy). Every accessor fails softly:
/// after the first error (truncation, overrun, caller-reported corruption)
/// `ok()` turns false, subsequent reads return zero values, and `error()`
/// describes the first failure. Deserializers can therefore run a
/// straight-line decode and check `ok()` once at the end.
class ByteSource {
 public:
  /// The caller keeps `data` alive and unchanged while reading.
  ByteSource(const void* data, size_t n)
      : cursor_(static_cast<const uint8_t*>(data)), remaining_(n) {}

  ByteSource(const ByteSource&) = delete;
  ByteSource& operator=(const ByteSource&) = delete;

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  uint64_t remaining() const { return remaining_; }

  /// Records the first failure; reads after this are no-ops.
  void Fail(const std::string& msg) {
    if (ok_) {
      ok_ = false;
      error_ = msg;
    }
  }

  bool ReadRaw(void* data, size_t n) {
    if (!ok_) return false;
    if (n == 0) return true;  // empty vector: data() may be null
    if (n > remaining_) {
      Fail("truncated snapshot payload");
      return false;
    }
    std::memcpy(data, cursor_, n);
    cursor_ += n;
    remaining_ -= n;
    return true;
  }

  uint8_t ReadU8() { return ReadPod<uint8_t>(); }
  uint16_t ReadU16() { return ReadPod<uint16_t>(); }
  uint32_t ReadU32() { return ReadPod<uint32_t>(); }
  uint64_t ReadU64() { return ReadPod<uint64_t>(); }

  std::string ReadString();

  /// Mirror of ByteSink::WriteVec. The element count is validated against
  /// the bytes remaining in the payload before anything is allocated, so a
  /// corrupt length cannot trigger a huge allocation. (The payload carries
  /// no alignment guarantees, so the copy goes through memcpy, never a
  /// typed pointer into the buffer.)
  template <typename T>
  bool ReadVec(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = ReadU64();
    if (!ok_) return false;
    if (count > remaining_ / sizeof(T)) {
      Fail("vector length exceeds snapshot payload");
      return false;
    }
    out->resize(count);
    return ReadRaw(out->data(), count * sizeof(T));
  }

 private:
  template <typename T>
  T ReadPod() {
    T v{};
    ReadRaw(&v, sizeof(v));
    return v;
  }

  const uint8_t* cursor_;
  uint64_t remaining_;
  bool ok_ = true;
  std::string error_;
};

}  // namespace rigpm

#endif  // RIGPM_UTIL_SERDE_H_
