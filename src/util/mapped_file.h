#ifndef RIGPM_UTIL_MAPPED_FILE_H_
#define RIGPM_UTIL_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace rigpm {

/// RAII wrapper around a read-only, MAP_SHARED memory mapping of a regular
/// file. MAP_SHARED matters for the serving deployment: N daemon processes
/// mapping the same snapshot share one physical copy of its pages through
/// the page cache instead of holding N private heaps.
///
/// Open() returns nullptr (with a description in *error) for sources that
/// cannot be mapped — missing files, FIFOs/pipes, empty files, exotic
/// filesystems where mmap fails — so callers can fall back to a streaming
/// read. The mapping is advised MADV_SEQUENTIAL|MADV_WILLNEED up front
/// (snapshot loading checksums the whole payload in one sequential pass),
/// then MADV_RANDOM after the checksum pass via AdviseRandom(), matching
/// the point-lookup access pattern of query serving.
class MappedFile {
 public:
  /// Maps `path` read-only. Returns nullptr and fills *error on failure.
  static std::shared_ptr<MappedFile> Open(const std::string& path,
                                          std::string* error = nullptr);

  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

  /// Switches the kernel read-ahead hint from sequential to random access
  /// (called once the sequential checksum pass is done).
  void AdviseRandom();

 private:
  MappedFile(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace rigpm

#endif  // RIGPM_UTIL_MAPPED_FILE_H_
