#include "util/serde.h"

namespace rigpm {

namespace {

inline uint64_t Rotl(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

inline uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

constexpr uint64_t kLaneInit[4] = {
    0x9E3779B97F4A7C15ull,
    0xBF58476D1CE4E5B9ull,
    0x94D049BB133111EBull,
    0x2545F4914F6CDD1Dull,
};
constexpr uint64_t kPrime = 0x9DDFEA08EB382D69ull;

}  // namespace

uint64_t Checksum64(const void* data, size_t n, uint64_t seed) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint64_t lanes[4];
  for (int i = 0; i < 4; ++i) lanes[i] = kLaneInit[i] ^ seed;

  size_t remaining = n;
  while (remaining >= 32) {
    uint64_t chunk[4];
    std::memcpy(chunk, bytes, 32);
    for (int i = 0; i < 4; ++i) {
      lanes[i] = Rotl((lanes[i] ^ chunk[i]) * kPrime, 29);
    }
    bytes += 32;
    remaining -= 32;
  }
  if (remaining > 0) {
    uint64_t chunk[4] = {0, 0, 0, 0};
    std::memcpy(chunk, bytes, remaining);
    for (int i = 0; i < 4; ++i) {
      lanes[i] = Rotl((lanes[i] ^ chunk[i]) * kPrime, 29);
    }
  }

  uint64_t h = Rotl(lanes[0], 1) ^ Rotl(lanes[1], 7) ^ Rotl(lanes[2], 12) ^
               Rotl(lanes[3], 18);
  return Mix(h ^ n);
}

std::string ByteSource::ReadString() {
  uint64_t len = ReadU64();
  if (!ok()) return std::string();
  if (len > remaining()) {
    Fail("string length exceeds snapshot payload");
    return std::string();
  }
  std::string s(len, '\0');
  ReadRaw(s.data(), len);
  return ok() ? s : std::string();
}

}  // namespace rigpm
