#include "util/serde.h"

#include <algorithm>

namespace rigpm {

namespace {

inline uint64_t Rotl(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

inline uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

constexpr uint64_t kLaneInit[4] = {
    0x9E3779B97F4A7C15ull,
    0xBF58476D1CE4E5B9ull,
    0x94D049BB133111EBull,
    0x2545F4914F6CDD1Dull,
};
constexpr uint64_t kPrime = 0x9DDFEA08EB382D69ull;

}  // namespace

uint64_t Checksum64(const void* data, size_t n, uint64_t seed) {
  Checksum64Stream stream(seed);
  stream.Update(data, n);
  return stream.Finish();
}

Checksum64Stream::Checksum64Stream(uint64_t seed) {
  for (int i = 0; i < 4; ++i) lanes_[i] = kLaneInit[i] ^ seed;
}

void Checksum64Stream::Block(const uint8_t* chunk_bytes) {
  uint64_t chunk[4];
  std::memcpy(chunk, chunk_bytes, 32);
  for (int i = 0; i < 4; ++i) {
    lanes_[i] = Rotl((lanes_[i] ^ chunk[i]) * kPrime, 29);
  }
}

void Checksum64Stream::Update(const void* data, size_t n) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  total_ += n;
  if (tail_len_ > 0) {
    size_t take = std::min(n, 32 - tail_len_);
    std::memcpy(tail_ + tail_len_, bytes, take);
    tail_len_ += take;
    bytes += take;
    n -= take;
    if (tail_len_ < 32) return;
    Block(tail_);
    tail_len_ = 0;
  }
  while (n >= 32) {
    Block(bytes);
    bytes += 32;
    n -= 32;
  }
  if (n > 0) {
    std::memcpy(tail_, bytes, n);
    tail_len_ = n;
  }
}

uint64_t Checksum64Stream::Finish() {
  if (tail_len_ > 0) {
    std::memset(tail_ + tail_len_, 0, 32 - tail_len_);
    Block(tail_);
    tail_len_ = 0;
  }
  uint64_t h = Rotl(lanes_[0], 1) ^ Rotl(lanes_[1], 7) ^ Rotl(lanes_[2], 12) ^
               Rotl(lanes_[3], 18);
  return Mix(h ^ total_);
}

std::string ByteSource::ReadString() {
  uint64_t len = ReadU64();
  if (!ok()) return std::string();
  if (len > remaining()) {
    Fail("string length exceeds snapshot payload");
    return std::string();
  }
  std::string s(len, '\0');
  ReadRaw(s.data(), len);
  return ok() ? s : std::string();
}

}  // namespace rigpm
