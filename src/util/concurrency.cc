#include "util/concurrency.h"

#include <thread>

namespace rigpm {

uint32_t ResolveWorkerCount(uint32_t requested, size_t work_items) {
  uint32_t workers = requested;
  if (workers == 0) {
    uint32_t hw = std::thread::hardware_concurrency();
    workers = hw > 0 ? hw : 2;
  }
  if (work_items < workers) workers = static_cast<uint32_t>(work_items);
  return workers > 0 ? workers : 1;
}

}  // namespace rigpm
